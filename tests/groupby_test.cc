#include <algorithm>
#include <numeric>
#include <set>

#include "gpusim/device.h"
#include "gtest/gtest.h"
#include "ibfs/groupby.h"
#include "ibfs/runner.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::VertexId;

std::vector<VertexId> AllVertices(const graph::Csr& g) {
  std::vector<VertexId> v(static_cast<size_t>(g.vertex_count()));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// Every grouping must be a permutation partition of its input.
void ExpectPartition(const Grouping& grouping,
                     std::span<const VertexId> sources, int group_size) {
  std::multiset<VertexId> in(sources.begin(), sources.end());
  std::multiset<VertexId> out;
  for (const auto& group : grouping.groups) {
    EXPECT_FALSE(group.empty());
    EXPECT_LE(static_cast<int>(group.size()), group_size);
    out.insert(group.begin(), group.end());
  }
  EXPECT_EQ(in, out);
}

TEST(GroupingTest, ChunkGroupingPreservesOrder) {
  const std::vector<VertexId> sources = {5, 3, 8, 1, 9};
  const Grouping g = ChunkGrouping(sources, 2);
  ASSERT_EQ(g.groups.size(), 3u);
  EXPECT_EQ(g.groups[0], (std::vector<VertexId>{5, 3}));
  EXPECT_EQ(g.groups[2], (std::vector<VertexId>{9}));
  ExpectPartition(g, sources, 2);
}

TEST(GroupingTest, RandomGroupingIsPartitionAndSeeded) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = AllVertices(g);
  const Grouping a = RandomGrouping(sources, 16, 42);
  const Grouping b = RandomGrouping(sources, 16, 42);
  const Grouping c = RandomGrouping(sources, 16, 43);
  ExpectPartition(a, sources, 16);
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_NE(a.groups, c.groups);
}

TEST(GroupByTest, IsPartition) {
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  const auto sources = AllVertices(g);
  GroupByParams params;
  params.group_size = 32;
  const Grouping grouping = GroupByOutdegree(g, sources, params);
  ExpectPartition(grouping, sources, 32);
}

TEST(GroupByTest, MatchesRulesOnPowerLawGraph) {
  const graph::Csr g = testing::MakeRmatGraph(8, 16);
  const auto sources = AllVertices(g);
  GroupByParams params;
  params.q = 32;
  const Grouping grouping = GroupByOutdegree(g, sources, params);
  // A power-law graph has hubs, so a solid share of sources should match
  // Rules 1+2.
  EXPECT_GT(grouping.rule_matched, g.vertex_count() / 4);
}

TEST(GroupByTest, HugeQMeansNoHubsButStillPartitions) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = AllVertices(g);
  GroupByParams params;
  params.q = 1 << 30;
  params.uniform_fallback = false;
  const Grouping grouping = GroupByOutdegree(g, sources, params);
  EXPECT_EQ(grouping.rule_matched, 0);
  ExpectPartition(grouping, sources, params.group_size);
}

TEST(GroupByTest, UniformFallbackGroupsByCommonNeighbor) {
  const graph::Csr g = testing::MakeUniformGraph(256, 4);
  const auto sources = AllVertices(g);
  GroupByParams params;
  params.q = 1 << 30;  // no hubs in a uniform graph at this threshold
  params.uniform_fallback = true;
  const Grouping grouping = GroupByOutdegree(g, sources, params);
  EXPECT_GT(grouping.rule_matched, 0);
  ExpectPartition(grouping, sources, params.group_size);
}

TEST(GroupByTest, ImprovesSharingDegreeOverRandom) {
  // The headline property (Figure 9): GroupBy groups share more frontiers
  // than random groups on a power-law graph.
  const graph::Csr g = testing::MakeRmatGraph(9, 16);
  const auto sources = AllVertices(g);
  GroupByParams params;
  params.group_size = 32;
  params.q = 32;
  const Grouping by_rule = GroupByOutdegree(g, sources, params);
  const Grouping random = RandomGrouping(sources, 32, 11);

  auto avg_sd = [&](const Grouping& grouping) {
    double sum = 0.0;
    int count = 0;
    for (const auto& group : grouping.groups) {
      if (static_cast<int>(group.size()) < params.group_size) continue;
      gpusim::Device device;
      auto result =
          RunGroup(Strategy::kJointTraversal, g, group, {}, &device);
      EXPECT_TRUE(result.ok());
      sum += result.value().trace.SharingDegree();
      ++count;
    }
    return count > 0 ? sum / count : 0.0;
  };
  EXPECT_GT(avg_sd(by_rule), avg_sd(random));
}

TEST(GroupByTest, GroupSizeOneDegenerates) {
  const graph::Csr g = testing::MakeRmatGraph(6, 8);
  const auto sources = AllVertices(g);
  GroupByParams params;
  params.group_size = 1;
  const Grouping grouping = GroupByOutdegree(g, sources, params);
  EXPECT_EQ(grouping.groups.size(), sources.size());
}

TEST(GroupByTest, EmptySourcesYieldNoGroups) {
  const graph::Csr g = testing::MakeSmallGraph();
  const Grouping grouping = GroupByOutdegree(g, {}, {});
  EXPECT_TRUE(grouping.groups.empty());
  EXPECT_TRUE(RandomGrouping({}, 8, 1).groups.empty());
  EXPECT_TRUE(ChunkGrouping({}, 8).groups.empty());
}

TEST(GroupByTest, PSequenceOrderInsensitive) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = AllVertices(g);
  GroupByParams a;
  a.p_sequence = {4, 16, 64, 128};
  GroupByParams b;
  b.p_sequence = {128, 4, 64, 16};
  const Grouping ga = GroupByOutdegree(g, sources, a);
  const Grouping gb = GroupByOutdegree(g, sources, b);
  EXPECT_EQ(ga.rule_matched, gb.rule_matched);
  EXPECT_EQ(ga.groups, gb.groups);
}

}  // namespace
}  // namespace ibfs
