// Tests of the fault-injection layer and the resilient execution built on
// it: fault-plan parsing/validation, injector determinism, straggler and
// corruption semantics, the engine's retry loop (depths bit-identical to a
// fault-free run whenever it reports OK), the device router's circuit
// breakers, the service's deadline / shedding / degraded-fallback
// behavior, and the chaos harness plus its resilience-report validator.
// Suite names start with "Fault", "Resilient", or "Chaos" so the tsan
// preset's test filter picks all of it up.
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/reference_bfs.h"
#include "core/engine.h"
#include "core/resilient.h"
#include "gpusim/device.h"
#include "gpusim/fault.h"
#include "graph/components.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/validate.h"
#include "service/chaos.h"
#include "service/service.h"
#include "service/workload.h"
#include "test_util.h"
#include "util/checksum.h"

namespace ibfs {
namespace {

using ::ibfs::testing::MakeRmatGraph;
using ::ibfs::testing::MakeSmallGraph;
using service::ServiceOptions;

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.strategy = Strategy::kBitwise;
  options.grouping = GroupingPolicy::kGroupBy;
  options.group_size = 16;
  options.keep_depths = true;
  return options;
}

// --------------------------------------------------------- plan parsing --

TEST(FaultPlanTest, DisabledByDefault) {
  gpusim::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.Validate().ok());
  EXPECT_EQ(plan.ToString(), "");
}

TEST(FaultPlanTest, ParsesFullSpec) {
  auto plan = gpusim::FaultPlan::Parse(
      "seed=7,devices=4,p_fail=0.1,corrupt=0.05,perm=1,straggle=2:8");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan.value().enabled());
  EXPECT_EQ(plan.value().seed, 7u);
  EXPECT_EQ(plan.value().device_count, 4);
  EXPECT_DOUBLE_EQ(plan.value().ForDevice(0).launch_failure_p, 0.1);
  EXPECT_DOUBLE_EQ(plan.value().ForDevice(0).corruption_p, 0.05);
  EXPECT_TRUE(plan.value().ForDevice(1).permanent_failure);
  EXPECT_FALSE(plan.value().ForDevice(0).permanent_failure);
  EXPECT_DOUBLE_EQ(plan.value().ForDevice(2).straggler_multiplier, 8.0);
  EXPECT_DOUBLE_EQ(plan.value().ForDevice(3).straggler_multiplier, 1.0);
  EXPECT_EQ(plan.value().PermanentlyFailedDevices(), std::vector<int>{1});
  EXPECT_DOUBLE_EQ(plan.value().MaxStragglerMultiplier(), 8.0);
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  const std::string spec = "seed=7,devices=4,p_fail=0.1,perm=1,straggle=2:8";
  auto plan = gpusim::FaultPlan::Parse(spec);
  ASSERT_TRUE(plan.ok());
  auto again = gpusim::FaultPlan::Parse(plan.value().ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().ToString(), plan.value().ToString());
  EXPECT_EQ(again.value().device_count, plan.value().device_count);
}

TEST(FaultPlanTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(gpusim::FaultPlan::Parse("bogus=1").ok());
  EXPECT_FALSE(gpusim::FaultPlan::Parse("p_fail=notanumber").ok());
  EXPECT_FALSE(gpusim::FaultPlan::Parse("devices=0").ok());
  EXPECT_FALSE(gpusim::FaultPlan::Parse("p_fail=1.5").ok());
  EXPECT_FALSE(gpusim::FaultPlan::Parse("devices=2,perm=5").ok());
  EXPECT_FALSE(gpusim::FaultPlan::Parse("straggle=0.5").ok());
}

TEST(FaultPlanTest, ValidateRejectsBadFields) {
  gpusim::FaultPlan plan;
  plan.device_count = 0;
  EXPECT_FALSE(plan.Validate().ok());
  plan = gpusim::FaultPlan();
  plan.defaults.launch_failure_p = 2.0;
  EXPECT_FALSE(plan.Validate().ok());
  plan = gpusim::FaultPlan();
  plan.defaults.straggler_multiplier = 0.5;
  EXPECT_FALSE(plan.Validate().ok());
  plan = gpusim::FaultPlan();
  plan.per_device[9] = gpusim::DeviceFaults{};  // outside the fleet of 1
  EXPECT_FALSE(plan.Validate().ok());
}

// ---------------------------------------------------------- injector -----

TEST(FaultInjectorTest, DecisionStreamIsDeterministic) {
  auto plan = gpusim::FaultPlan::Parse("seed=11,p_fail=0.5");
  ASSERT_TRUE(plan.ok());
  std::vector<bool> first;
  std::vector<bool> second;
  gpusim::FaultInjector a(plan.value(), 0, 3);
  gpusim::FaultInjector b(plan.value(), 0, 3);
  for (int i = 0; i < 64; ++i) {
    first.push_back(a.OnKernelLaunch().ok());
    second.push_back(b.OnKernelLaunch().ok());
  }
  EXPECT_EQ(first, second);

  // A different attempt salt must draw a different stream.
  gpusim::FaultInjector c(plan.value(), 0, 4);
  std::vector<bool> other;
  for (int i = 0; i < 64; ++i) other.push_back(c.OnKernelLaunch().ok());
  EXPECT_NE(first, other);
}

TEST(FaultInjectorTest, PermanentDeviceAlwaysFails) {
  auto plan = gpusim::FaultPlan::Parse("devices=2,perm=1");
  ASSERT_TRUE(plan.ok());
  gpusim::FaultInjector dead(plan.value(), 1, 0);
  gpusim::FaultInjector alive(plan.value(), 0, 0);
  for (int i = 0; i < 8; ++i) {
    const Status st = dead.OnKernelLaunch();
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(alive.OnKernelLaunch().ok());
  }
}

TEST(FaultInjectorTest, CorruptDepthsFlipsEveryInstance) {
  auto plan = gpusim::FaultPlan::Parse("corrupt=1");
  ASSERT_TRUE(plan.ok());
  gpusim::FaultInjector injector(plan.value(), 0, 0);
  EXPECT_TRUE(injector.ShouldCorruptTransfer());
  std::vector<std::vector<uint8_t>> depths = {{0, 1, 2, 3}, {}, {5, 5}};
  const uint64_t before0 = Fnv1a(depths[0]);
  const uint64_t before2 = Fnv1a(depths[2]);
  injector.CorruptDepths(&depths);
  EXPECT_NE(Fnv1a(depths[0]), before0);
  EXPECT_NE(Fnv1a(depths[2]), before2);
  EXPECT_TRUE(depths[1].empty());
}

TEST(FaultInjectorTest, StragglerStretchesSimulatedTime) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  EngineOptions options = SmallEngineOptions();
  const Engine engine(&graph, options);
  const std::vector<graph::VertexId> group = {0, 1, 2, 3};

  gpusim::Device clean(options.device);
  auto clean_run = engine.ExecuteGroup(group, &clean, obs::Observer());
  ASSERT_TRUE(clean_run.ok());

  auto plan = gpusim::FaultPlan::Parse("straggle=8");
  ASSERT_TRUE(plan.ok());
  gpusim::FaultInjector injector(plan.value(), 0, 0);
  gpusim::Device slow(options.device);
  slow.SetFaultInjector(&injector);
  auto slow_run = engine.ExecuteGroup(group, &slow, obs::Observer());
  ASSERT_TRUE(slow_run.ok());
  EXPECT_TRUE(slow.fault_status().ok());

  EXPECT_GT(clean.elapsed_seconds(), 0.0);
  EXPECT_NEAR(slow.elapsed_seconds(), 8.0 * clean.elapsed_seconds(),
              1e-9 * slow.elapsed_seconds());
}

TEST(FaultInjectorTest, TransientFaultLatchesDeviceStatus) {
  const graph::Csr graph = MakeSmallGraph();
  EngineOptions options = SmallEngineOptions();
  const Engine engine(&graph, options);
  auto plan = gpusim::FaultPlan::Parse("p_fail=1");
  ASSERT_TRUE(plan.ok());
  gpusim::FaultInjector injector(plan.value(), 0, 0);
  gpusim::Device device(options.device);
  device.SetFaultInjector(&injector);
  auto run = engine.ExecuteGroup({{0, 1}}, &device, obs::Observer());
  ASSERT_TRUE(run.ok());  // simulation completes; the fault is latched
  EXPECT_TRUE(device.faulted());
  EXPECT_EQ(device.fault_status().code(), StatusCode::kUnavailable);
  device.ClearFault();
  EXPECT_FALSE(device.faulted());
}

// ------------------------------------------------- resilient execution --

TEST(ResilientEngineTest, RetriedRunMatchesFaultFreeDepthsBitExactly) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  EngineOptions clean_options = SmallEngineOptions();
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 48, 3);

  Engine clean(&graph, clean_options);
  auto clean_run = clean.Run(sources);
  ASSERT_TRUE(clean_run.ok());
  ASSERT_EQ(clean_run.value().retries, 0);
  ASSERT_EQ(clean_run.value().wasted_sim_seconds, 0.0);

  EngineOptions faulty_options = clean_options;
  auto plan = gpusim::FaultPlan::Parse("seed=5,devices=2,p_fail=0.05");
  ASSERT_TRUE(plan.ok());
  faulty_options.faults = plan.value();
  faulty_options.retry.max_attempts = 16;
  faulty_options.retry.initial_backoff_ms = 0.0;
  faulty_options.retry.max_backoff_ms = 0.0;
  Engine faulty(&graph, faulty_options);
  auto faulty_run = faulty.Run(sources);
  ASSERT_TRUE(faulty_run.ok()) << faulty_run.status().ToString();

  // Faults fired and retries recovered them...
  EXPECT_GT(faulty_run.value().transient_faults, 0);
  EXPECT_GT(faulty_run.value().retries, 0);
  EXPECT_GT(faulty_run.value().wasted_sim_seconds, 0.0);
  // ...and the depths are bit-identical to the fault-free run.
  ASSERT_EQ(faulty_run.value().groups.size(),
            clean_run.value().groups.size());
  for (size_t g = 0; g < clean_run.value().groups.size(); ++g) {
    EXPECT_EQ(faulty_run.value().groups[g].depths,
              clean_run.value().groups[g].depths);
  }
}

TEST(ResilientEngineTest, ExhaustedRetriesSurfaceUnavailable) {
  const graph::Csr graph = MakeSmallGraph();
  EngineOptions options = SmallEngineOptions();
  auto plan = gpusim::FaultPlan::Parse("p_fail=1");
  ASSERT_TRUE(plan.ok());
  options.faults = plan.value();
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0.0;
  options.retry.max_backoff_ms = 0.0;
  Engine engine(&graph, options);
  auto run = engine.Run({{0, 1, 2}});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kUnavailable);
}

TEST(ResilientEngineTest, CorruptionIsDetectedQuarantinedAndRetried) {
  const graph::Csr graph = MakeRmatGraph(7, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 24, 3);

  EngineOptions clean_options = SmallEngineOptions();
  Engine clean(&graph, clean_options);
  auto clean_run = clean.Run(sources);
  ASSERT_TRUE(clean_run.ok());

  EngineOptions options = clean_options;
  auto plan = gpusim::FaultPlan::Parse("seed=9,corrupt=0.5");
  ASSERT_TRUE(plan.ok());
  options.faults = plan.value();
  options.retry.max_attempts = 16;
  options.retry.initial_backoff_ms = 0.0;
  options.retry.max_backoff_ms = 0.0;
  Engine engine(&graph, options);
  auto run = engine.Run(sources);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Corruptions were injected, every one was caught by the transfer
  // checksum, and the payloads that survived are uncorrupted.
  EXPECT_GT(run.value().corruptions_detected, 0);
  for (size_t g = 0; g < clean_run.value().groups.size(); ++g) {
    EXPECT_EQ(run.value().groups[g].depths,
              clean_run.value().groups[g].depths);
  }
}

TEST(ResilientEngineTest, BackoffGrowsAndRespectsCap) {
  RetryPolicy retry;
  retry.initial_backoff_ms = 1.0;
  retry.backoff_multiplier = 2.0;
  retry.max_backoff_ms = 4.0;
  retry.jitter = 0.0;
  EXPECT_DOUBLE_EQ(retry.BackoffMs(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(0, 4), 4.0);
  EXPECT_DOUBLE_EQ(retry.BackoffMs(0, 5), 4.0);  // capped

  retry.jitter = 0.25;
  const double jittered = retry.BackoffMs(0, 3);
  EXPECT_GE(jittered, 2.0 * 0.75);
  EXPECT_LE(jittered, 2.0 * 1.25);
  // Jitter is seeded: the same (salt, attempt) draws the same value.
  EXPECT_DOUBLE_EQ(retry.BackoffMs(0, 3), jittered);
}

TEST(ResilientEngineTest, RetryPolicyValidatesDistinctly) {
  RetryPolicy retry;
  retry.max_attempts = 0;
  EXPECT_NE(retry.Validate().ToString().find("max_attempts"),
            std::string::npos);
  retry = RetryPolicy();
  retry.backoff_multiplier = 0.5;
  EXPECT_NE(retry.Validate().ToString().find("backoff_multiplier"),
            std::string::npos);
  retry = RetryPolicy();
  retry.jitter = 1.0;
  EXPECT_NE(retry.Validate().ToString().find("jitter"), std::string::npos);
  retry = RetryPolicy();
  retry.initial_backoff_ms = -1.0;
  EXPECT_FALSE(retry.Validate().ok());
}

TEST(ResilientRouterTest, BreakerOpensAfterConsecutiveFailures) {
  DeviceRouter router(2, 2);
  EXPECT_EQ(router.healthy_count(), 2);
  EXPECT_FALSE(router.ReportFailure(0));
  EXPECT_FALSE(router.IsOpen(0));
  // A success in between resets the consecutive count.
  router.ReportSuccess(0);
  EXPECT_FALSE(router.ReportFailure(0));
  EXPECT_TRUE(router.ReportFailure(0));
  EXPECT_TRUE(router.IsOpen(0));
  EXPECT_EQ(router.healthy_count(), 1);
  EXPECT_EQ(router.opened_total(), 1);

  // Acquire only offers the healthy device now.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(router.Acquire(), 1);

  EXPECT_FALSE(router.ReportFailure(1));
  EXPECT_TRUE(router.ReportFailure(1));
  EXPECT_FALSE(router.ReportFailure(1));  // already open, not reopened
  EXPECT_EQ(router.opened_total(), 2);
  EXPECT_EQ(router.healthy_count(), 0);
  EXPECT_EQ(router.Acquire(), DeviceRouter::kNoDevice);
}

// ------------------------------------------------------ service chaos ----

ServiceOptions ChaosServiceOptions() {
  ServiceOptions options;
  options.max_batch = 16;
  options.max_delay_ms = 5.0;
  options.execute_threads = 2;
  options.keep_depths = true;
  options.engine = SmallEngineOptions();
  options.engine.retry.initial_backoff_ms = 0.0;
  options.engine.retry.max_backoff_ms = 0.0;
  return options;
}

TEST(ChaosServiceTest, ValidatesResilienceKnobsWithDistinctMessages) {
  ServiceOptions options = ChaosServiceOptions();
  options.resilience.deadline_ms = -1.0;
  EXPECT_NE(options.Validate().ToString().find("deadline_ms"),
            std::string::npos);
  options = ChaosServiceOptions();
  options.resilience.max_pending = -1;
  EXPECT_NE(options.Validate().ToString().find("max_pending"),
            std::string::npos);
  options = ChaosServiceOptions();
  options.resilience.breaker_threshold = 0;
  EXPECT_NE(options.Validate().ToString().find("breaker_threshold"),
            std::string::npos);
  options = ChaosServiceOptions();
  EXPECT_TRUE(options.Validate().ok());
}

TEST(ChaosServiceTest, FallbackServesCorrectDepthsAndMarksDegraded) {
  const graph::Csr graph = MakeSmallGraph();
  ServiceOptions options = ChaosServiceOptions();
  auto plan = gpusim::FaultPlan::Parse("perm=0");  // the whole fleet of 1
  ASSERT_TRUE(plan.ok());
  options.engine.faults = plan.value();
  options.engine.retry.max_attempts = 2;
  options.resilience.cpu_fallback = true;
  auto service = service::BfsService::Create(&graph, options);
  ASSERT_TRUE(service.ok());
  std::future<service::QueryResult> future =
      service.value()->Submit(0);
  service.value()->Shutdown();
  const service::QueryResult result = future.get();
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.degraded);
  EXPECT_TRUE(baselines::DepthsMatchReference(graph, 0, result.depths));
  const auto stats = service.value()->stats();
  EXPECT_GT(stats.fallback_groups, 0);
  EXPECT_GT(stats.degraded, 0);
}

TEST(ChaosServiceTest, FallbackDisabledSurfacesTheFailure) {
  const graph::Csr graph = MakeSmallGraph();
  ServiceOptions options = ChaosServiceOptions();
  auto plan = gpusim::FaultPlan::Parse("perm=0");
  ASSERT_TRUE(plan.ok());
  options.engine.faults = plan.value();
  options.engine.retry.max_attempts = 2;
  options.resilience.cpu_fallback = false;
  auto service = service::BfsService::Create(&graph, options);
  ASSERT_TRUE(service.ok());
  std::future<service::QueryResult> future =
      service.value()->Submit(0);
  service.value()->Shutdown();
  const service::QueryResult result = future.get();
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(result.degraded);
}

TEST(ChaosServiceTest, DeadlineTripsAsDeadlineExceeded) {
  const graph::Csr graph = MakeSmallGraph();
  ServiceOptions options = ChaosServiceOptions();
  // Any real execution takes longer than a 1-microsecond deadline.
  options.resilience.deadline_ms = 0.001;
  auto service = service::BfsService::Create(&graph, options);
  ASSERT_TRUE(service.ok());
  std::future<service::QueryResult> future =
      service.value()->Submit(0);
  service.value()->Shutdown();
  const service::QueryResult result = future.get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(service.value()->stats().deadline_exceeded, 0);
}

TEST(ChaosServiceTest, GenerousDeadlineStillServesNormally) {
  // Regression: with a deadline armed but nowhere near expiring, the
  // close-time expiry filter must leave the batch's promises intact.
  const graph::Csr graph = MakeSmallGraph();
  ServiceOptions options = ChaosServiceOptions();
  options.resilience.deadline_ms = 60000.0;
  auto service = service::BfsService::Create(&graph, options);
  ASSERT_TRUE(service.ok());
  std::vector<std::future<service::QueryResult>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(service.value()->Submit(i));
  }
  service.value()->Shutdown();
  for (auto& future : futures) {
    const service::QueryResult result = future.get();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_FALSE(result.degraded);
  }
  EXPECT_EQ(service.value()->stats().deadline_exceeded, 0);
}

TEST(ChaosServiceTest, BoundedQueueShedsWithResourceExhausted) {
  const graph::Csr graph = MakeSmallGraph();
  ServiceOptions options = ChaosServiceOptions();
  options.max_batch = 64;          // never size-close during the test
  options.max_delay_ms = 200.0;    // hold the batch open while we submit
  options.resilience.max_pending = 1;
  auto service = service::BfsService::Create(&graph, options);
  ASSERT_TRUE(service.ok());
  std::vector<std::future<service::QueryResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.value()->Submit(0));
  }
  service.value()->Shutdown();
  int64_t ok = 0;
  int64_t shed = 0;
  for (auto& future : futures) {
    const service::QueryResult result = future.get();
    if (result.status.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(service.value()->stats().shed, shed);
}

TEST(ChaosServiceTest, RunChaosChecksumsMatchFaultFreeBaseline) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  service::ChaosOptions chaos;
  chaos.workload.qps = 400.0;
  chaos.workload.duration_s = 0.2;
  chaos.workload.seed = 7;
  chaos.service = ChaosServiceOptions();
  chaos.service.keep_depths = false;
  auto plan = gpusim::FaultPlan::Parse(
      "seed=7,devices=4,p_fail=0.05,perm=1,straggle=2:8");
  ASSERT_TRUE(plan.ok());
  chaos.service.engine.faults = plan.value();
  chaos.service.engine.retry.max_attempts = 4;

  auto report = service::RunChaos("rmat8", graph, chaos);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().queries, 0);
  EXPECT_GT(report.value().checksums_compared, 0);
  EXPECT_EQ(report.value().checksum_mismatches, 0);
  // With no deadline and the fallback armed, every query completes.
  EXPECT_EQ(report.value().completed, report.value().queries);
  EXPECT_EQ(report.value().failed, 0);
  EXPECT_GT(report.value().transient_faults, 0);
  EXPECT_EQ(report.value().device_count, 4);
  EXPECT_EQ(report.value().fault_seed, 7);
}

TEST(ChaosReportTest, WritesSchemaValidJson) {
  obs::ResilienceReport report;
  report.graph = "test";
  report.strategy = "bitwise";
  report.grouping = "groupby";
  report.fault_spec = "p_fail=0.1";
  report.queries = 10;
  report.completed = 9;
  report.deadline_exceeded = 1;
  report.checksums_compared = 9;
  std::ostringstream os;
  report.WriteJson(os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_TRUE(obs::ValidateResilienceReport(doc.value()).ok())
      << obs::ValidateResilienceReport(doc.value()).ToString();
}

TEST(ChaosReportTest, ValidatorRejectsWrongSchemaAndBadCounts) {
  // A service report is not a resilience report.
  obs::ServiceReport service_report;
  std::ostringstream os;
  service_report.WriteJson(os);
  auto doc = obs::ParseJson(os.str());
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(obs::ValidateResilienceReport(doc.value()).ok());

  // More mismatches than comparisons is structurally impossible.
  obs::ResilienceReport report;
  report.checksums_compared = 1;
  report.checksum_mismatches = 2;
  std::ostringstream bad;
  report.WriteJson(bad);
  auto bad_doc = obs::ParseJson(bad.str());
  ASSERT_TRUE(bad_doc.ok());
  EXPECT_FALSE(obs::ValidateResilienceReport(bad_doc.value()).ok());

  // Negative recovery counters are rejected.
  obs::ResilienceReport negative;
  negative.retries = -1;
  std::ostringstream neg;
  negative.WriteJson(neg);
  auto neg_doc = obs::ParseJson(neg.str());
  ASSERT_TRUE(neg_doc.ok());
  EXPECT_FALSE(obs::ValidateResilienceReport(neg_doc.value()).ok());
}

TEST(ChaosReportTest, FaultMetricsFlowThroughTheRegistry) {
  const graph::Csr graph = MakeSmallGraph();
  obs::MetricsRegistry metrics;
  EngineOptions options = SmallEngineOptions();
  auto plan = gpusim::FaultPlan::Parse("p_fail=1");
  ASSERT_TRUE(plan.ok());
  options.faults = plan.value();
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 0.0;
  options.retry.max_backoff_ms = 0.0;
  options.observer.metrics = &metrics;
  Engine engine(&graph, options);
  auto run = engine.Run({{0}});
  ASSERT_FALSE(run.ok());
  EXPECT_GT(metrics.GetCounter("fault.kernel_faults")->value(), 0);
  EXPECT_GT(metrics.GetCounter("fault.failed_attempts")->value(), 0);
  EXPECT_GT(metrics.GetCounter("retry.attempts")->value(), 0);
  EXPECT_GT(metrics.GetCounter("retry.exhausted")->value(), 0);
}

}  // namespace
}  // namespace ibfs
