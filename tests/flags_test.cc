#include "gtest/gtest.h"
#include "util/flags.h"

namespace ibfs {
namespace {

Flags MustParse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.ok());
  return std::move(flags).value();
}

TEST(FlagsTest, EqualsSyntax) {
  const Flags f = MustParse({"--name=value", "--n=42"});
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_EQ(f.GetInt("n", 0), 42);
}

TEST(FlagsTest, SpaceSyntax) {
  const Flags f = MustParse({"--name", "value", "--n", "42"});
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_EQ(f.GetInt("n", 0), 42);
}

TEST(FlagsTest, BareSwitchIsTrue) {
  const Flags f = MustParse({"--verbose", "--quiet=false", "--off=0"});
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("quiet"));
  EXPECT_FALSE(f.GetBool("off"));
  EXPECT_FALSE(f.GetBool("absent"));
  EXPECT_TRUE(f.GetBool("absent", true));
}

TEST(FlagsTest, PositionalsCollected) {
  const Flags f = MustParse({"run", "--x=1", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(FlagsTest, SwitchBeforeFlagStaysBare) {
  // `--a --b=1`: a must not swallow --b as its value.
  const Flags f = MustParse({"--a", "--b=1"});
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_EQ(f.GetInt("b", 0), 1);
}

TEST(FlagsTest, DefaultsOnMissingOrUnparsable) {
  const Flags f = MustParse({"--bad=oops"});
  EXPECT_EQ(f.GetInt("bad", 7), 7);
  EXPECT_EQ(f.GetDouble("bad", 1.5), 1.5);
  EXPECT_EQ(f.GetInt("missing", -1), -1);
  EXPECT_EQ(f.GetString("missing", "d"), "d");
}

TEST(FlagsTest, DoubleParsing) {
  const Flags f = MustParse({"--alpha=14.5"});
  EXPECT_DOUBLE_EQ(f.GetDouble("alpha", 0.0), 14.5);
}

TEST(FlagsTest, EmptyFlagNameIsError) {
  const char* argv[] = {"prog", "--=x"};
  EXPECT_FALSE(Flags::Parse(2, argv).ok());
  const char* argv2[] = {"prog", "--"};
  EXPECT_FALSE(Flags::Parse(2, argv2).ok());
}

TEST(FlagsTest, KeysEnumerated) {
  const Flags f = MustParse({"--a=1", "--b=2"});
  const auto keys = f.Keys();
  EXPECT_EQ(keys.size(), 2u);
}

}  // namespace
}  // namespace ibfs
