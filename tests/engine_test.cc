#include <numeric>

#include "baselines/reference_bfs.h"
#include "core/engine.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::VertexId;

TEST(EngineOptionsTest, DefaultsValidate) {
  EngineOptions options;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(EngineOptionsTest, RejectsBadFields) {
  EngineOptions options;
  options.group_size = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.group_size = 100000;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.traversal.alpha = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.groupby.p_sequence.clear();
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.device.clock_ghz = 0.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(EngineOptionsTest, PolicyNames) {
  EXPECT_STREQ(GroupingPolicyName(GroupingPolicy::kInOrder), "in-order");
  EXPECT_STREQ(GroupingPolicyName(GroupingPolicy::kRandom), "random");
  EXPECT_STREQ(GroupingPolicyName(GroupingPolicy::kGroupBy), "groupby");
}

TEST(EngineTest, RunRejectsBadSources) {
  const graph::Csr g = testing::MakeSmallGraph();
  Engine engine(&g, {});
  EXPECT_FALSE(engine.Run({}).ok());
  const std::vector<VertexId> bad = {100};
  EXPECT_FALSE(engine.Run(bad).ok());
}

TEST(EngineTest, AllStrategiesAllPoliciesMatchReference) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  std::vector<VertexId> sources(64);
  std::iota(sources.begin(), sources.end(), 0);
  for (Strategy strategy :
       {Strategy::kSequential, Strategy::kNaiveConcurrent,
        Strategy::kJointTraversal, Strategy::kBitwise}) {
    for (GroupingPolicy policy :
         {GroupingPolicy::kInOrder, GroupingPolicy::kRandom,
          GroupingPolicy::kGroupBy}) {
      EngineOptions options;
      options.strategy = strategy;
      options.grouping = policy;
      options.group_size = 16;
      Engine engine(&g, options);
      auto result = engine.Run(sources);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      const EngineResult& res = result.value();
      // In-order and random chunk exactly; GroupBy may emit extra partial
      // groups when bucket tails are merged.
      if (policy != GroupingPolicy::kGroupBy) {
        EXPECT_EQ(res.groups.size(), 4u);
      }
      int64_t total_sources = 0;
      for (const auto& gs : res.group_sources) {
        total_sources += static_cast<int64_t>(gs.size());
      }
      EXPECT_EQ(total_sources, 64);
      for (size_t grp = 0; grp < res.groups.size(); ++grp) {
        for (size_t j = 0; j < res.group_sources[grp].size(); ++j) {
          EXPECT_TRUE(baselines::DepthsMatchReference(
              g, res.group_sources[grp][j], res.groups[grp].depths[j]))
              << StrategyName(strategy) << "/" << GroupingPolicyName(policy);
        }
      }
    }
  }
}

TEST(EngineTest, TepsIsEdgesTimesInstancesOverTime) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  std::vector<VertexId> sources(32);
  std::iota(sources.begin(), sources.end(), 0);
  EngineOptions options;
  options.grouping = GroupingPolicy::kInOrder;
  Engine engine(&g, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok());
  const EngineResult& res = result.value();
  EXPECT_GT(res.sim_seconds, 0.0);
  EXPECT_NEAR(res.teps,
              32.0 * static_cast<double>(g.edge_count()) / res.sim_seconds,
              1e-6 * res.teps);
}

TEST(EngineTest, GroupSecondsSumToTotal) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  std::vector<VertexId> sources(48);
  std::iota(sources.begin(), sources.end(), 0);
  EngineOptions options;
  options.group_size = 16;
  options.grouping = GroupingPolicy::kInOrder;
  Engine engine(&g, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok());
  double sum = 0.0;
  for (double s : result.value().group_seconds) sum += s;
  EXPECT_NEAR(sum, result.value().sim_seconds, 1e-12);
}

TEST(EngineTest, KeepDepthsOffDropsDepths) {
  const graph::Csr g = testing::MakeRmatGraph(6, 8);
  std::vector<VertexId> sources(8);
  std::iota(sources.begin(), sources.end(), 0);
  EngineOptions options;
  options.keep_depths = false;
  Engine engine(&g, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok());
  for (const auto& grp : result.value().groups) {
    EXPECT_TRUE(grp.depths.empty());
  }
}

TEST(EngineTest, RunAllSourcesCoversEveryVertex) {
  const graph::Csr g = testing::MakeSmallGraph();
  EngineOptions options;
  options.group_size = 4;
  Engine engine(&g, options);
  auto result = engine.RunAllSources();
  ASSERT_TRUE(result.ok());
  int64_t total = 0;
  for (const auto& src : result.value().group_sources) {
    total += static_cast<int64_t>(src.size());
  }
  EXPECT_EQ(total, g.vertex_count());
}

TEST(EngineTest, MaxGroupSizeFollowsSectionThreeBound) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  gpusim::DeviceSpec spec;
  const int64_t n = Engine::MaxGroupSize(g, spec);
  const int64_t expected =
      (spec.global_memory_bytes - g.StorageBytes() -
       g.vertex_count() * static_cast<int64_t>(sizeof(graph::VertexId))) /
      g.vertex_count();
  EXPECT_EQ(n, expected);
  // A tiny device cannot even hold the graph.
  spec.global_memory_bytes = 1024;
  EXPECT_EQ(Engine::MaxGroupSize(g, spec), 0);
}

TEST(EngineTest, DeviceMemoryCapClampsGroupSize) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  EngineOptions options;
  options.group_size = 64;
  options.grouping = GroupingPolicy::kInOrder;
  // Size the device so only ~8 instances fit.
  options.device.global_memory_bytes =
      g.StorageBytes() +
      g.vertex_count() * static_cast<int64_t>(sizeof(graph::VertexId)) +
      g.vertex_count() * 8;
  std::vector<VertexId> sources(16);
  std::iota(sources.begin(), sources.end(), 0);
  Engine engine(&g, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().groups.size(), 2u);
  // Graph that cannot fit at all is a failed precondition.
  options.device.global_memory_bytes = 10;
  Engine tiny(&g, options);
  EXPECT_EQ(tiny.Run(sources).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, GroupByPolicyReportsRuleMatches) {
  const graph::Csr g = testing::MakeRmatGraph(8, 16);
  std::vector<VertexId> sources(static_cast<size_t>(g.vertex_count()));
  std::iota(sources.begin(), sources.end(), 0);
  EngineOptions options;
  options.grouping = GroupingPolicy::kGroupBy;
  options.groupby.q = 32;
  options.keep_depths = false;
  Engine engine(&g, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().rule_matched, 0);
}

TEST(EngineTest, SharingRatioDirectionSplit) {
  const graph::Csr g = testing::MakeRmatGraph(8, 16);
  std::vector<VertexId> sources(64);
  std::iota(sources.begin(), sources.end(), 0);
  EngineOptions options;
  options.strategy = Strategy::kJointTraversal;
  options.grouping = GroupingPolicy::kInOrder;
  options.keep_depths = false;
  Engine engine(&g, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok());
  const EngineResult& res = result.value();
  EXPECT_GT(res.SharingRatio(-1), 0.0);
  EXPECT_LE(res.SharingRatio(-1), 1.0 + 1e-9);
  // Bottom-up sharing exceeds top-down sharing (Figure 2's observation).
  EXPECT_GT(res.SharingRatio(1), res.SharingRatio(0));
}

TEST(EngineTest, PhasesReported) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  std::vector<VertexId> sources(16);
  std::iota(sources.begin(), sources.end(), 0);
  EngineOptions options;
  options.grouping = GroupingPolicy::kInOrder;
  Engine engine(&g, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().phases.count("fq_gen"));
  EXPECT_TRUE(result.value().phases.count("td_inspect"));
}

}  // namespace
}  // namespace ibfs
