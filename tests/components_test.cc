#include <algorithm>
#include <set>

#include "graph/builder.h"
#include "graph/components.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs::graph {
namespace {

TEST(ComponentsTest, SingleComponentCoversAll) {
  const Csr g = ibfs::testing::MakeSmallGraph();
  const auto mask = GiantComponentMask(g);
  for (bool m : mask) EXPECT_TRUE(m);
  EXPECT_EQ(GiantComponent(g).size(), static_cast<size_t>(g.vertex_count()));
}

TEST(ComponentsTest, PicksLargerComponent) {
  // Chain of 10 plus an island pair: giant = the chain.
  const Csr g = ibfs::testing::MakeDisconnectedGraph(12);
  const auto members = GiantComponent(g);
  ASSERT_EQ(members.size(), 10u);
  EXPECT_EQ(members.front(), 0u);
  EXPECT_EQ(members.back(), 9u);
  const auto mask = GiantComponentMask(g);
  EXPECT_FALSE(mask[10]);
  EXPECT_FALSE(mask[11]);
}

TEST(ComponentsTest, WeaklyConnectedFollowsBothDirections) {
  // Directed chain 0 -> 1 -> 2; weak connectivity must still join them.
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(GiantComponent(g.value()).size(), 3u);
}

TEST(ComponentsTest, SampleStaysInGiantComponent) {
  const Csr g = ibfs::testing::MakeDisconnectedGraph(12);
  const auto sources = SampleConnectedSources(g, 8, 1);
  ASSERT_EQ(sources.size(), 8u);
  for (VertexId s : sources) EXPECT_LT(s, 10u);
}

TEST(ComponentsTest, SampleIsDeterministicAndSeedSensitive) {
  const Csr g = ibfs::testing::MakeRmatGraph(8, 8);
  const auto a = SampleConnectedSources(g, 32, 5);
  const auto b = SampleConnectedSources(g, 32, 5);
  const auto c = SampleConnectedSources(g, 32, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ComponentsTest, SampleDistinctUntilPoolExhausted) {
  const Csr g = ibfs::testing::MakeDisconnectedGraph(12);  // pool size 10
  const auto small = SampleConnectedSources(g, 10, 2);
  std::set<VertexId> unique(small.begin(), small.end());
  EXPECT_EQ(unique.size(), 10u);
  // Larger than the pool: wraps around with duplicates, but still valid.
  const auto large = SampleConnectedSources(g, 15, 2);
  EXPECT_EQ(large.size(), 15u);
  for (VertexId s : large) EXPECT_LT(s, 10u);
}

TEST(ComponentsTest, EmptyRequestYieldsEmpty) {
  const Csr g = ibfs::testing::MakeSmallGraph();
  EXPECT_TRUE(SampleConnectedSources(g, 0, 1).empty());
}

}  // namespace
}  // namespace ibfs::graph
