#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/degree_stats.h"
#include "graph/io.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs::graph {
namespace {

TEST(BuilderTest, BuildsSimpleDirectedGraph) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  const Csr& g = result.value();
  EXPECT_EQ(g.vertex_count(), 3);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.OutDegree(2), 0);
  EXPECT_EQ(g.InDegree(2), 2);
}

TEST(BuilderTest, UndirectedEdgesStoreBothDirections) {
  GraphBuilder builder(2);
  builder.AddUndirectedEdge(0, 1);
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  const Csr& g = result.value();
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.OutDegree(1), 1);
}

TEST(BuilderTest, DeduplicatesEdges) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().edge_count(), 1);
}

TEST(BuilderTest, KeepsSelfLoops) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().edge_count(), 2);
}

TEST(BuilderTest, AdjacencySorted) {
  GraphBuilder builder(5);
  builder.AddEdge(0, 4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 3);
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  const auto nbrs = result.value().OutNeighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(BuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 5);
  auto result = std::move(builder).Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(BuilderTest, RejectsNonPositiveVertexCount) {
  GraphBuilder builder(0);
  auto result = std::move(builder).Build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, AddEdgesBulk) {
  GraphBuilder builder(4);
  builder.AddEdges({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(builder.edge_count(), 3);
  auto result = std::move(builder).Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().edge_count(), 3);
}

TEST(CsrTest, ReverseAdjacencyMirrorsForward) {
  const Csr g = ibfs::testing::MakeSmallGraph();
  // For an undirected build, in-neighbors equal out-neighbors.
  for (int64_t v = 0; v < g.vertex_count(); ++v) {
    const auto out = g.OutNeighbors(static_cast<VertexId>(v));
    const auto in = g.InNeighbors(static_cast<VertexId>(v));
    ASSERT_EQ(out.size(), in.size());
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], in[i]);
  }
}

TEST(CsrTest, EdgeCountConsistentWithDegrees) {
  const Csr g = ibfs::testing::MakeSmallGraph();
  int64_t total = 0;
  for (int64_t v = 0; v < g.vertex_count(); ++v) {
    total += g.OutDegree(static_cast<VertexId>(v));
  }
  EXPECT_EQ(total, g.edge_count());
}

TEST(CsrTest, StorageBytesPositiveAndPlausible) {
  const Csr g = ibfs::testing::MakeSmallGraph();
  EXPECT_GT(g.StorageBytes(), g.edge_count() * 4);
}

TEST(IoTest, RoundTripsEdgeList) {
  const Csr g = ibfs::testing::MakeSmallGraph();
  const std::string path = ::testing::TempDir() + "/ibfs_io_test.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path, g.vertex_count());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().edge_count(), g.edge_count());
  for (int64_t v = 0; v < g.vertex_count(); ++v) {
    const auto a = g.OutNeighbors(static_cast<VertexId>(v));
    const auto b = loaded.value().OutNeighbors(static_cast<VertexId>(v));
    ASSERT_EQ(a.size(), b.size());
  }
  std::remove(path.c_str());
}

TEST(IoTest, SkipsCommentsAndInfersVertexCount) {
  const std::string path = ::testing::TempDir() + "/ibfs_io_comments.txt";
  {
    std::ofstream out(path);
    out << "# comment\n% comment\n0 1\n1 2\n";
  }
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().vertex_count(), 3);
  EXPECT_EQ(loaded.value().edge_count(), 2);
  std::remove(path.c_str());
}

TEST(IoTest, UndirectedLoadDoublesEdges) {
  const std::string path = ::testing::TempDir() + "/ibfs_io_undirected.txt";
  {
    std::ofstream out(path);
    out << "0 1\n";
  }
  auto loaded = LoadEdgeList(path, -1, /*undirected=*/true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().edge_count(), 2);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  auto loaded = LoadEdgeList("/nonexistent/path/file.txt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IoTest, MalformedLineIsIoError) {
  const std::string path = ::testing::TempDir() + "/ibfs_io_bad.txt";
  {
    std::ofstream out(path);
    out << "0 notanumber\n";
  }
  auto loaded = LoadEdgeList(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(DegreeStatsTest, ComputesAggregates) {
  const Csr g = ibfs::testing::MakeSmallGraph();
  const DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.vertex_count, g.vertex_count());
  EXPECT_EQ(stats.edge_count, g.edge_count());
  EXPECT_NEAR(stats.avg_outdegree,
              static_cast<double>(g.edge_count()) / g.vertex_count(), 1e-12);
  EXPECT_GT(stats.max_outdegree, 0);
  EXPECT_EQ(stats.zero_degree_count, 0);
}

TEST(DegreeStatsTest, HighOutDegreeVertices) {
  const Csr g = ibfs::testing::MakeSmallGraph();
  const auto hubs = HighOutDegreeVertices(g, 3);
  for (VertexId h : hubs) EXPECT_GT(g.OutDegree(h), 3);
  // Threshold above max degree yields nothing.
  EXPECT_TRUE(HighOutDegreeVertices(g, 100).empty());
}

TEST(DegreeStatsTest, HistogramCountsAllVertices) {
  const Csr g = ibfs::testing::MakeRmatGraph(7, 8);
  const auto hist = DegreeHistogram(g);
  int64_t total = 0;
  for (int64_t c : hist) total += c;
  EXPECT_EQ(total, g.vertex_count());
}

}  // namespace
}  // namespace ibfs::graph
