#ifndef IBFS_TESTS_TEST_UTIL_H_
#define IBFS_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "gen/rmat.h"
#include "gen/uniform.h"
#include "graph/builder.h"
#include "graph/csr.h"
#include "util/logging.h"

namespace ibfs::testing {

/// A small 9-vertex undirected graph in the spirit of the paper's Figure 1
/// example: a few hubs, one degree-3 vertex 7 with neighbors {5, 6, 8}.
inline graph::Csr MakeSmallGraph() {
  graph::GraphBuilder builder(9);
  const std::vector<std::pair<int, int>> edges = {
      {0, 1}, {0, 4}, {1, 2}, {1, 5}, {4, 3}, {4, 5},
      {2, 6}, {3, 6}, {5, 7}, {6, 7}, {7, 8}, {2, 3}};
  for (auto [u, v] : edges) {
    builder.AddUndirectedEdge(static_cast<graph::VertexId>(u),
                              static_cast<graph::VertexId>(v));
  }
  auto result = std::move(builder).Build();
  IBFS_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A graph with an unreachable island {n-2, n-1} plus a connected chain,
/// for exercising bottom-up scans over never-visited vertices.
inline graph::Csr MakeDisconnectedGraph(int n = 12) {
  graph::GraphBuilder builder(n);
  for (int v = 0; v + 1 < n - 2; ++v) {
    builder.AddUndirectedEdge(static_cast<graph::VertexId>(v),
                              static_cast<graph::VertexId>(v + 1));
  }
  builder.AddUndirectedEdge(static_cast<graph::VertexId>(n - 2),
                            static_cast<graph::VertexId>(n - 1));
  auto result = std::move(builder).Build();
  IBFS_CHECK(result.ok());
  return std::move(result).value();
}

/// Deterministic power-law test graph.
inline graph::Csr MakeRmatGraph(int scale = 8, int edge_factor = 8,
                                uint64_t seed = 42) {
  gen::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = seed;
  auto result = gen::GenerateRmat(params);
  IBFS_CHECK(result.ok());
  return std::move(result).value();
}

/// Deterministic uniform-outdegree test graph.
inline graph::Csr MakeUniformGraph(int64_t vertices = 256, int outdegree = 6,
                                   uint64_t seed = 42) {
  gen::UniformParams params;
  params.vertex_count = vertices;
  params.outdegree = outdegree;
  params.seed = seed;
  auto result = gen::GenerateUniform(params);
  IBFS_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace ibfs::testing

#endif  // IBFS_TESTS_TEST_UTIL_H_
