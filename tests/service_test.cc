// Tests of the online BFS query service: option validation, the shared
// GroupSources planning path, batcher close semantics (size vs deadline vs
// shutdown), drain guarantees, duplicate-query fan-out, workload
// generation, determinism across executor thread counts, and the
// dynamic-vs-oracle sharing SLO. Every suite name starts with "Service" so
// the tsan preset's test filter picks all of it up.
#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/group_plan.h"
#include "core/validate.h"
#include "graph/components.h"
#include "ibfs/status_array.h"
#include "service/service.h"
#include "service/workload.h"
#include "test_util.h"

namespace ibfs::service {
namespace {

using ::ibfs::testing::MakeRmatGraph;
using ::ibfs::testing::MakeSmallGraph;

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.strategy = Strategy::kBitwise;
  options.grouping = GroupingPolicy::kGroupBy;
  options.group_size = 16;
  return options;
}

ServiceOptions QuickServiceOptions() {
  ServiceOptions options;
  options.max_batch = 16;
  options.max_delay_ms = 5.0;
  options.execute_threads = 2;
  options.engine = SmallEngineOptions();
  return options;
}

// ------------------------------------------------------------ validation --

TEST(ServiceOptionsTest, RejectsNegativeDelay) {
  ServiceOptions options = QuickServiceOptions();
  options.max_delay_ms = -1.0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ServiceOptionsTest, RejectsZeroMaxBatch) {
  ServiceOptions options = QuickServiceOptions();
  options.max_batch = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ServiceOptionsTest, RejectsNegativeThreads) {
  ServiceOptions options = QuickServiceOptions();
  options.execute_threads = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ServiceOptionsTest, RejectsInvalidEmbeddedEngineOptions) {
  ServiceOptions options = QuickServiceOptions();
  options.engine.group_size = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(ServiceOptionsTest, RejectsNegativeDeadlineWithDistinctMessage) {
  ServiceOptions options = QuickServiceOptions();
  options.resilience.deadline_ms = -1.0;
  const Status status = options.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("deadline_ms"), std::string::npos);
}

TEST(ServiceOptionsTest, RejectsNegativeMaxPendingWithDistinctMessage) {
  ServiceOptions options = QuickServiceOptions();
  options.resilience.max_pending = -1;
  const Status status = options.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("max_pending"), std::string::npos);
}

TEST(ServiceOptionsTest, RejectsZeroBreakerThresholdWithDistinctMessage) {
  ServiceOptions options = QuickServiceOptions();
  options.resilience.breaker_threshold = 0;
  const Status status = options.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("breaker_threshold"), std::string::npos);
}

TEST(ServiceOptionsTest, AcceptsDefaults) {
  ServiceOptions options;
  EXPECT_TRUE(options.Validate().ok());
  // max_delay_ms == 0 is legal (close as soon as the batcher wakes).
  options.max_delay_ms = 0.0;
  EXPECT_TRUE(options.Validate().ok());
}

// ----------------------------------------------------------- group plan --

TEST(ServiceGroupPlanTest, MatchesEngineRunGrouping) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  EngineOptions options = SmallEngineOptions();
  options.keep_depths = false;
  const auto sources = graph::SampleConnectedSources(graph, 48, 7);

  auto plan = GroupSources(graph, sources, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Engine engine(&graph, options);
  auto run = engine.Run(sources);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Engine::Run plans through the same GroupSources call, so the group
  // decomposition must agree exactly.
  ASSERT_EQ(plan.value().grouping.groups.size(),
            run.value().group_sources.size());
  for (size_t g = 0; g < run.value().group_sources.size(); ++g) {
    EXPECT_EQ(plan.value().grouping.groups[g],
              run.value().group_sources[g]);
  }
}

TEST(ServiceGroupPlanTest, RejectsEmptyBatch) {
  const graph::Csr graph = MakeSmallGraph();
  EXPECT_FALSE(GroupSources(graph, {}, SmallEngineOptions()).ok());
}

TEST(ServiceGroupPlanTest, RejectsOutOfRangeSource) {
  const graph::Csr graph = MakeSmallGraph();
  const std::vector<graph::VertexId> sources = {
      0, static_cast<graph::VertexId>(graph.vertex_count())};
  EXPECT_FALSE(GroupSources(graph, sources, SmallEngineOptions()).ok());
}

TEST(ServiceGroupPlanTest, DuplicatePolicyControlsRepeats) {
  const graph::Csr graph = MakeSmallGraph();
  const std::vector<graph::VertexId> sources = {1, 2, 1};
  EXPECT_TRUE(GroupSources(graph, sources, SmallEngineOptions(),
                           DuplicatePolicy::kAllow)
                  .ok());
  const auto rejected = GroupSources(graph, sources, SmallEngineOptions(),
                                     DuplicatePolicy::kReject);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceGroupPlanTest, ClampsGroupSizeToDeviceBound) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  EngineOptions options = SmallEngineOptions();
  options.group_size = 1 << 20;  // far beyond any device bound
  const std::vector<graph::VertexId> sources = {0, 1, 2, 3};
  auto plan = GroupSources(graph, sources, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_LE(plan.value().group_size,
            Engine::MaxGroupSize(graph, options.device));
}

// --------------------------------------------------------------- batcher --

TEST(ServiceBatcherTest, SizeCloseAtMaxBatch) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  ServiceOptions options = QuickServiceOptions();
  options.max_batch = 8;
  options.max_delay_ms = 5000.0;  // only a size close can fire quickly
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  const auto sources = graph::SampleConnectedSources(graph, 8, 3);
  std::vector<std::future<QueryResult>> futures;
  for (graph::VertexId s : sources) {
    futures.push_back(svc.value()->Submit(s));
  }
  for (auto& f : futures) {
    const QueryResult r = f.get();
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_GE(r.batch_id, 0);
    EXPECT_GE(r.group_index, 0);
  }
  const BfsService::Stats stats = svc.value()->stats();
  EXPECT_EQ(stats.queries, 8);
  EXPECT_EQ(stats.completed, 8);
  EXPECT_GE(stats.size_closes, 1);
  svc.value()->Shutdown();
}

TEST(ServiceBatcherTest, DeadlineCloseForPartialBatch) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  ServiceOptions options = QuickServiceOptions();
  options.max_batch = 1024;  // never fills
  options.max_delay_ms = 20.0;
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  const auto sources = graph::SampleConnectedSources(graph, 6, 4);
  std::vector<std::future<QueryResult>> futures;
  for (graph::VertexId s : sources) {
    futures.push_back(svc.value()->Submit(s));
  }
  // The futures can only resolve once the deadline closes the batch.
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  const BfsService::Stats stats = svc.value()->stats();
  EXPECT_GE(stats.deadline_closes, 1);
  EXPECT_EQ(stats.completed, 6);
  svc.value()->Shutdown();
}

TEST(ServiceBatcherTest, CloseReasonsPartitionBatches) {
  // Size and deadline race at max_batch-sized bursts: whatever wins, every
  // batch must be accounted to exactly one close reason and every query
  // must complete.
  const graph::Csr graph = MakeRmatGraph(8, 8);
  ServiceOptions options = QuickServiceOptions();
  options.max_batch = 4;
  options.max_delay_ms = 1.0;
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  const auto sources = graph::SampleConnectedSources(graph, 32, 5);
  std::vector<std::future<QueryResult>> futures;
  for (graph::VertexId s : sources) {
    futures.push_back(svc.value()->Submit(s));
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  svc.value()->Shutdown();
  const BfsService::Stats stats = svc.value()->stats();
  EXPECT_EQ(stats.completed, 32);
  EXPECT_GE(stats.batches, 1);
  EXPECT_EQ(stats.size_closes + stats.deadline_closes +
                stats.shutdown_closes,
            stats.batches);
}

TEST(ServiceBatcherTest, ShutdownDrainsAllPendingFutures) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  ServiceOptions options = QuickServiceOptions();
  options.max_batch = 1 << 20;
  options.max_delay_ms = 60000.0;  // neither close can fire on its own
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  const auto sources = graph::SampleConnectedSources(graph, 12, 6);
  std::vector<std::future<QueryResult>> futures;
  for (graph::VertexId s : sources) {
    futures.push_back(svc.value()->Submit(s));
  }
  svc.value()->Shutdown();  // must flush the open batch and resolve all
  int ok = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    if (f.get().status.ok()) ++ok;
  }
  EXPECT_EQ(ok, 12);
  const BfsService::Stats stats = svc.value()->stats();
  EXPECT_GE(stats.shutdown_closes, 1);
}

TEST(ServiceBatcherTest, SubmitAfterShutdownFailsFast) {
  const graph::Csr graph = MakeSmallGraph();
  auto svc = BfsService::Create(&graph, QuickServiceOptions());
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  svc.value()->Shutdown();
  auto future = svc.value()->Submit(0);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const QueryResult result = future.get();
  EXPECT_EQ(result.status.code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceBatcherTest, OutOfRangeSourceFailsItsOwnQueryOnly) {
  const graph::Csr graph = MakeSmallGraph();
  auto svc = BfsService::Create(&graph, QuickServiceOptions());
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  auto bad = svc.value()->Submit(
      static_cast<graph::VertexId>(graph.vertex_count()));
  auto good = svc.value()->Submit(0);
  EXPECT_EQ(bad.get().status.code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(good.get().status.ok());
  svc.value()->Shutdown();
  const BfsService::Stats stats = svc.value()->stats();
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(ServiceBatcherTest, DuplicateSourcesShareOneExecution) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  ServiceOptions options = QuickServiceOptions();
  options.max_batch = 4;
  options.max_delay_ms = 50.0;
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  const graph::VertexId source =
      graph::SampleConnectedSources(graph, 1, 8).front();
  auto a = svc.value()->Submit(source);
  auto b = svc.value()->Submit(source);
  const QueryResult ra = a.get();
  const QueryResult rb = b.get();
  ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
  ASSERT_TRUE(rb.status.ok()) << rb.status.ToString();
  EXPECT_EQ(ra.depth_checksum, rb.depth_checksum);
  EXPECT_EQ(ra.reached, rb.reached);
  EXPECT_EQ(ra.depths, rb.depths);
  EXPECT_NE(ra.query_id, rb.query_id);
  svc.value()->Shutdown();
}

TEST(ServiceBatcherTest, DepthsMatchReferenceBfs) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  auto svc = BfsService::Create(&graph, QuickServiceOptions());
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  const auto sources = graph::SampleConnectedSources(graph, 8, 9);
  std::vector<std::future<QueryResult>> futures;
  for (graph::VertexId s : sources) {
    futures.push_back(svc.value()->Submit(s));
  }
  for (auto& f : futures) {
    const QueryResult r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_EQ(r.depths.size(),
              static_cast<size_t>(graph.vertex_count()));
    EXPECT_GT(r.reached, 0);
    const Status valid = ValidateBfsDepths(
        graph, r.source, r.depths, TraversalOptions::kMaxTraversalLevel);
    EXPECT_TRUE(valid.ok()) << valid.ToString();
  }
  svc.value()->Shutdown();
}

TEST(ServiceBatcherTest, LatencyBreakdownIsConsistent) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  auto svc = BfsService::Create(&graph, QuickServiceOptions());
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  const QueryResult r = svc.value()->Submit(0).get();
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_GE(r.latency.queue_ms, 0.0);
  EXPECT_GE(r.latency.batch_ms, 0.0);
  EXPECT_GE(r.latency.execute_ms, 0.0);
  // Total covers the whole pipeline (equality up to clock reads).
  EXPECT_GE(r.latency.total_ms,
            r.latency.queue_ms + r.latency.execute_ms - 1e-6);
  svc.value()->Shutdown();
}

// -------------------------------------------------------------- workload --

TEST(ServiceWorkloadTest, ValidatesOptions) {
  WorkloadOptions options;
  options.qps = 0.0;
  EXPECT_FALSE(options.Validate().ok());
  options = WorkloadOptions();
  options.duration_s = -1.0;
  EXPECT_FALSE(options.Validate().ok());
  options = WorkloadOptions();
  options.burst_size = 0;
  EXPECT_FALSE(options.Validate().ok());
  EXPECT_TRUE(WorkloadOptions().Validate().ok());
}

TEST(ServiceWorkloadTest, ArrivalNamesRoundTrip) {
  for (ArrivalProcess arrival :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kUniform}) {
    const auto parsed = ParseArrivalProcess(ArrivalProcessName(arrival));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, arrival);
  }
  EXPECT_FALSE(ParseArrivalProcess("adversarial").has_value());
}

TEST(ServiceWorkloadTest, GenerationIsDeterministicAndOrdered) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  WorkloadOptions options;
  options.qps = 500.0;
  options.duration_s = 0.5;
  options.seed = 11;
  for (ArrivalProcess arrival :
       {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
        ArrivalProcess::kUniform}) {
    options.arrival = arrival;
    auto a = GenerateArrivals(graph, options);
    auto b = GenerateArrivals(graph, options);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().size(), b.value().size());
    for (size_t i = 0; i < a.value().size(); ++i) {
      EXPECT_EQ(a.value()[i].at_s, b.value()[i].at_s);
      EXPECT_EQ(a.value()[i].source, b.value()[i].source);
      EXPECT_LT(a.value()[i].source, graph.vertex_count());
      if (i > 0) EXPECT_GE(a.value()[i].at_s, a.value()[i - 1].at_s);
      EXPECT_LT(a.value()[i].at_s, options.duration_s);
    }
  }
}

TEST(ServiceWorkloadTest, UniformArrivalsMatchOfferedLoad) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  WorkloadOptions options;
  options.arrival = ArrivalProcess::kUniform;
  options.qps = 100.0;
  options.duration_s = 1.0;
  auto events = GenerateArrivals(graph, options);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_NEAR(static_cast<double>(events.value().size()),
              options.qps * options.duration_s, 2.0);
}

TEST(ServiceWorkloadTest, MaxQueriesCapsGeneration) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  WorkloadOptions options;
  options.arrival = ArrivalProcess::kBursty;
  options.qps = 10000.0;
  options.duration_s = 1.0;
  options.max_queries = 37;
  auto events = GenerateArrivals(graph, options);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events.value().size(), 37u);
}

// --------------------------------------------------- determinism + SLOs --

// Collects source -> checksum for one full pass of `events` through a
// service with the given executor width, asserting every query succeeds.
std::map<graph::VertexId, uint64_t> RunPass(
    const graph::Csr& graph, const std::vector<WorkloadEvent>& events,
    int execute_threads) {
  ServiceOptions options = QuickServiceOptions();
  options.max_batch = 16;
  options.max_delay_ms = 2.0;
  options.execute_threads = execute_threads;
  options.keep_depths = false;
  auto svc = BfsService::Create(&graph, options);
  IBFS_CHECK(svc.ok()) << svc.status().ToString();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(events.size());
  for (const WorkloadEvent& event : events) {
    futures.push_back(svc.value()->Submit(event.source));
  }
  svc.value()->Shutdown();
  std::map<graph::VertexId, uint64_t> checksums;
  for (auto& f : futures) {
    const QueryResult r = f.get();
    IBFS_CHECK(r.status.ok()) << r.status.ToString();
    const auto [it, inserted] =
        checksums.emplace(r.source, r.depth_checksum);
    // A repeated source must reproduce its checksum even within one pass.
    if (!inserted) IBFS_CHECK(it->second == r.depth_checksum);
  }
  return checksums;
}

TEST(ServiceDeterminismTest, DepthChecksumsIdenticalAcrossThreadCounts) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  WorkloadOptions workload;
  workload.qps = 2000.0;
  workload.duration_s = 0.05;
  workload.seed = 2016;
  auto events = GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  const auto serial = RunPass(graph, events.value(), 1);
  const auto parallel = RunPass(graph, events.value(), 4);
  // Batch composition differs run to run (it depends on wall-clock
  // timing), but per-query depths depend only on (graph, source), so the
  // checksum maps must match bit for bit.
  EXPECT_EQ(serial, parallel);
}

TEST(ServiceSharingTest, FullBatchMatchesOracleSharing) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  WorkloadOptions workload;
  workload.arrival = ArrivalProcess::kUniform;
  workload.qps = 64000.0;
  workload.duration_s = 0.001;
  workload.max_queries = 64;
  auto events = GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  ServiceOptions options = QuickServiceOptions();
  options.max_batch = 64;
  options.max_delay_ms = 1000.0;  // the size close fires first
  options.keep_depths = false;
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  std::vector<std::future<QueryResult>> futures;
  for (const WorkloadEvent& event : events.value()) {
    futures.push_back(svc.value()->Submit(event.source));
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.get().status.ok());
  }
  svc.value()->Shutdown();

  auto oracle =
      OracleSharingRatio(graph, options.engine, events.value());
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  const double achieved = svc.value()->stats().SharingRatio();
  EXPECT_GT(achieved, 0.0);
  // One full 64-query batch goes through the identical GroupSources path
  // the oracle uses, so dynamic batching must retain at least the
  // acceptance bar of 80% of the oracle's sharing (it is typically equal).
  EXPECT_GE(achieved, 0.8 * oracle.value());
}

TEST(ServiceSharingTest, ReportBuildsFromDrivenWorkload) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  WorkloadOptions workload;
  workload.arrival = ArrivalProcess::kPoisson;
  workload.qps = 800.0;
  workload.duration_s = 0.05;
  workload.seed = 3;
  auto events = GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  ServiceOptions options = QuickServiceOptions();
  options.keep_depths = false;
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  auto drive = DriveWorkload(svc.value().get(), events.value());
  ASSERT_TRUE(drive.ok()) << drive.status().ToString();
  EXPECT_EQ(drive.value().results.size(), events.value().size());

  auto oracle = OracleSharingRatio(graph, options.engine, events.value());
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  const obs::ServiceReport report = BuildServiceReport(
      "rmat8", graph, options, workload, drive.value(), oracle.value());
  EXPECT_EQ(report.queries,
            static_cast<int64_t>(events.value().size()));
  EXPECT_EQ(report.completed + report.failed, report.queries);
  EXPECT_GT(report.achieved_qps, 0.0);
  EXPECT_GT(report.batches, 0);
  EXPECT_LE(report.total_ms.p50, report.total_ms.p95);
  EXPECT_LE(report.total_ms.p95, report.total_ms.p99);
  EXPECT_GT(report.total_ms.max, 0.0);
}

// ------------------------------------------------------- stats snapshots --

TEST(ServiceStatsTest, AddSumsEveryField) {
  BfsService::Stats a;
  a.queries = 3;
  a.completed = 2;
  a.failed = 1;
  a.batches = 2;
  a.groups = 2;
  a.executed_instances = 3;
  a.cache_hits = 1;
  a.rejected = 1;
  a.shed = 1;
  a.degraded = 1;
  a.retries = 2;
  a.breaker_opened = 1;
  a.sim_seconds = 0.5;
  a.private_fq_sum = 10;
  a.jfq_sum = 4;
  BfsService::Stats b = a;
  b.queries = 7;
  b.sim_seconds = 1.5;
  a.Add(b);
  EXPECT_EQ(a.queries, 10);
  EXPECT_EQ(a.completed, 4);
  EXPECT_EQ(a.failed, 2);
  EXPECT_EQ(a.batches, 4);
  EXPECT_EQ(a.executed_instances, 6);
  EXPECT_EQ(a.cache_hits, 2);
  EXPECT_EQ(a.rejected, 2);
  EXPECT_EQ(a.shed, 2);
  EXPECT_EQ(a.degraded, 2);
  EXPECT_EQ(a.retries, 4);
  EXPECT_EQ(a.breaker_opened, 2);
  EXPECT_DOUBLE_EQ(a.sim_seconds, 2.0);
  EXPECT_EQ(a.private_fq_sum, 20);
  EXPECT_EQ(a.jfq_sum, 8);
}

TEST(ServiceStatsTest, SnapshotsNeverTearUnderConcurrentLoad) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  ServiceOptions options = QuickServiceOptions();
  options.max_delay_ms = 0.5;
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  // Poll snapshots while queries flow. Every mutation path accounts
  // under the stats lock *before* resolving the client future, so each
  // snapshot must satisfy the cross-field invariant — a torn read
  // (e.g. completed bumped before queries) breaks it.
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const BfsService::Stats snap = svc.value()->stats();
      if (snap.completed + snap.failed >
          snap.queries + snap.cache_hits + snap.shed + snap.rejected) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      if (snap.queries < 0 || snap.completed < 0 || snap.failed < 0) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  const auto sources = graph::SampleConnectedSources(graph, 64, 13);
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(sources.size() + 8);
  for (graph::VertexId s : sources) {
    futures.push_back(svc.value()->Submit(s));
  }
  for (int i = 0; i < 8; ++i) {
    // Out-of-range rejects exercise the failure accounting path too.
    futures.push_back(svc.value()->Submit(
        static_cast<graph::VertexId>(graph.vertex_count() + i)));
  }
  for (auto& f : futures) f.wait();
  svc.value()->Shutdown();
  stop.store(true, std::memory_order_relaxed);
  poller.join();

  EXPECT_EQ(violations.load(), 0);
  const BfsService::Stats final_stats = svc.value()->stats();
  // Every future resolved, so the final snapshot is exact.
  EXPECT_EQ(final_stats.completed + final_stats.failed,
            static_cast<int64_t>(futures.size()));
  EXPECT_EQ(final_stats.failed, 8);
  EXPECT_EQ(final_stats.rejected, 8);
}

}  // namespace
}  // namespace ibfs::service
