#include "graph/partition.h"

#include <cstdint>
#include <vector>

#include "core/cluster_engine.h"
#include "core/engine.h"
#include "gpusim/memory_model.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "gtest/gtest.h"
#include "ibfs/runner.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::VertexId;

// ---------------------------------------------------------------------------
// PartitionByEdges1D

TEST(PartitionTest, CoversAllVerticesAndEdges) {
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  for (int partitions : {1, 2, 3, 4, 7, 8}) {
    auto parted = graph::PartitionByEdges1D(g, partitions);
    ASSERT_TRUE(parted.ok()) << parted.status().ToString();
    const graph::Partitioning& p = parted.value();
    ASSERT_EQ(p.partition_count(), partitions);

    VertexId cursor = 0;
    int64_t edge_sum = 0;
    for (const graph::GraphPartition& part : p.parts) {
      EXPECT_EQ(part.range.begin, cursor);
      EXPECT_GT(part.range.size(), 0);
      EXPECT_EQ(part.local.vertex_count(), part.range.size());
      edge_sum += part.local.edge_count();
      cursor = part.range.end;
    }
    EXPECT_EQ(static_cast<int64_t>(cursor), g.vertex_count());
    EXPECT_EQ(edge_sum, g.edge_count());
    EXPECT_EQ(p.total_edges, g.edge_count());
  }
}

TEST(PartitionTest, LocalCsrMatchesParentAdjacency) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  auto parted = graph::PartitionByEdges1D(g, 4);
  ASSERT_TRUE(parted.ok());
  for (const graph::GraphPartition& part : parted.value().parts) {
    for (int64_t r = 0; r < part.local.vertex_count(); ++r) {
      const auto v = static_cast<VertexId>(part.range.begin + r);
      const auto expect = g.OutNeighbors(v);
      const auto got = part.local.OutNeighbors(r);
      ASSERT_EQ(got.size(), expect.size()) << "vertex " << v;
      for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expect[i]);
    }
  }
}

TEST(PartitionTest, OwnerOfAgreesWithRanges) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  auto parted = graph::PartitionByEdges1D(g, 5);
  ASSERT_TRUE(parted.ok());
  const graph::Partitioning& p = parted.value();
  for (VertexId v = 0; v < static_cast<VertexId>(g.vertex_count()); ++v) {
    const int owner = p.OwnerOf(v);
    EXPECT_TRUE(p.parts[static_cast<size_t>(owner)].range.Contains(v));
  }
}

TEST(PartitionTest, DeterministicAndBalanced) {
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  auto a = graph::PartitionByEdges1D(g, 4);
  auto b = graph::PartitionByEdges1D(g, 4);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().range_ends, b.value().range_ends);
  // Greedy prefix cut: the heaviest partition stays within one vertex's
  // degree of the ideal share. On this power-law graph that bounds the
  // imbalance well below 2x.
  EXPECT_GE(a.value().EdgeImbalance(), 1.0);
  EXPECT_LT(a.value().EdgeImbalance(), 2.0);
}

TEST(PartitionTest, RejectsBadPartitionCounts) {
  const graph::Csr g = testing::MakeSmallGraph();  // 9 vertices
  EXPECT_FALSE(graph::PartitionByEdges1D(g, 0).ok());
  EXPECT_FALSE(graph::PartitionByEdges1D(g, -1).ok());
  EXPECT_FALSE(graph::PartitionByEdges1D(g, 10).ok());
  EXPECT_TRUE(graph::PartitionByEdges1D(g, 9).ok());
}

// Two disjoint identical components split exactly at the component
// boundary: the two partitions' local CSRs differ only in their global
// neighbor ids. To make the *local byte patterns* collide we build each
// component's adjacency so the second is the first shifted by the
// component size — with local row rebasing, only the adjacency's global
// ids differ... so instead use self-contained rings whose adjacency bytes
// cannot match, and assert on the range salt directly: equal-topology
// partitions of *different ranges* must produce different cache keys.
TEST(PartitionTest, FingerprintIsSaltedByVertexRange) {
  // Ring of 8 + ring of 8: partitioning at 2 cuts exactly between them.
  graph::GraphBuilder builder(16);
  for (int c = 0; c < 2; ++c) {
    const int base = c * 8;
    for (int i = 0; i < 8; ++i) {
      builder.AddUndirectedEdge(static_cast<VertexId>(base + i),
                                static_cast<VertexId>(base + (i + 1) % 8));
    }
  }
  auto built = std::move(builder).Build();
  ASSERT_TRUE(built.ok());
  const graph::Csr g = std::move(built).value();
  auto parted = graph::PartitionByEdges1D(g, 2);
  ASSERT_TRUE(parted.ok());
  const graph::Partitioning& p = parted.value();
  ASSERT_EQ(p.parts[0].range.end, 8u);

  // Same local shape (row offsets identical; adjacency differs only by the
  // +8 shift), and crucially the same *sizes* — a topology-only key is one
  // id-pattern coincidence away from colliding. The range salt separates
  // the keys no matter what the local bytes look like.
  EXPECT_EQ(p.parts[0].local.vertex_count(), p.parts[1].local.vertex_count());
  EXPECT_EQ(p.parts[0].local.edge_count(), p.parts[1].local.edge_count());
  EXPECT_NE(p.parts[0].Fingerprint(), p.parts[1].Fingerprint());
  // And the salt is the only difference once topologies coincide: a
  // partition fingerprinted twice is stable.
  EXPECT_EQ(p.parts[0].Fingerprint(), p.parts[0].Fingerprint());
  EXPECT_NE(p.parts[0].Fingerprint(), p.parts[0].local.TopologyFingerprint());
}

// ---------------------------------------------------------------------------
// FrontierExchangeCost

TEST(CommCostTest, SingleParticipantIsFree) {
  const gpusim::LinkSpec link;
  for (auto schedule :
       {gpusim::CommSchedule::kAllGather, gpusim::CommSchedule::kButterfly}) {
    const auto cost = gpusim::FrontierExchangeCost(schedule, 1, 4096, link);
    EXPECT_EQ(cost.seconds, 0.0);
    EXPECT_EQ(cost.bytes_on_wire, 0);
    EXPECT_EQ(cost.rounds, 0);
  }
}

TEST(CommCostTest, BytesAndRoundsFollowTheModel) {
  const gpusim::LinkSpec link{10.0, 5.0};
  const int64_t bytes = 1 << 20;
  for (int p : {2, 3, 4, 8, 16}) {
    const auto ag = gpusim::FrontierExchangeCost(
        gpusim::CommSchedule::kAllGather, p, bytes, link);
    const auto bf = gpusim::FrontierExchangeCost(
        gpusim::CommSchedule::kButterfly, p, bytes, link);
    // Both schedules move every slice to every rank.
    EXPECT_EQ(ag.bytes_on_wire, static_cast<int64_t>(p) * (p - 1) * bytes);
    EXPECT_EQ(bf.bytes_on_wire, ag.bytes_on_wire);
    EXPECT_EQ(ag.rounds, p - 1);
    int64_t log2p = 0;
    for (int64_t reach = 1; reach < p; reach <<= 1) ++log2p;
    EXPECT_EQ(bf.rounds, log2p);
  }
}

TEST(CommCostTest, ButterflyBeatsRingPastTwoRanks) {
  const gpusim::LinkSpec link{12.0, 5.0};
  const int64_t bytes = 64 * 1024;
  const auto ag2 = gpusim::FrontierExchangeCost(
      gpusim::CommSchedule::kAllGather, 2, bytes, link);
  const auto bf2 = gpusim::FrontierExchangeCost(
      gpusim::CommSchedule::kButterfly, 2, bytes, link);
  EXPECT_DOUBLE_EQ(ag2.seconds, bf2.seconds);  // 1 round either way
  for (int p : {4, 8, 16}) {
    const auto ag = gpusim::FrontierExchangeCost(
        gpusim::CommSchedule::kAllGather, p, bytes, link);
    const auto bf = gpusim::FrontierExchangeCost(
        gpusim::CommSchedule::kButterfly, p, bytes, link);
    EXPECT_LT(bf.seconds, ag.seconds) << "P=" << p;
  }
}

// ---------------------------------------------------------------------------
// RunPartitioned parity with the unpartitioned engine

EngineOptions ParityOptions(Strategy strategy) {
  EngineOptions options;
  options.strategy = strategy;
  options.grouping = GroupingPolicy::kGroupBy;
  options.group_size = 16;
  options.traversal.collect_instance_stats = false;
  return options;
}

TEST(RunPartitionedTest, DepthsMatchEngineAcrossPartitionsAndStrategies) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = graph::SampleConnectedSources(g, 48, 1);
  for (Strategy strategy :
       {Strategy::kSequential, Strategy::kNaiveConcurrent,
        Strategy::kJointTraversal, Strategy::kBitwise}) {
    const EngineOptions options = ParityOptions(strategy);
    Engine engine(&g, options);
    auto baseline = engine.Run(sources);
    ASSERT_TRUE(baseline.ok());
    const uint64_t expected = DepthChecksum(baseline.value().groups);
    for (int partitions : {1, 2, 4, 8}) {
      PartitionRunOptions prun;
      prun.partitions = partitions;
      auto result = RunPartitioned(g, sources, options, prun);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result.value().groups.size(), baseline.value().groups.size());
      EXPECT_EQ(DepthChecksum(result.value().groups), expected)
          << StrategyName(strategy) << " P=" << partitions;
    }
  }
}

TEST(RunPartitionedTest, ScheduleAndThreadsDoNotChangeDepths) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = graph::SampleConnectedSources(g, 32, 3);
  EngineOptions options = ParityOptions(Strategy::kBitwise);
  PartitionRunOptions prun;
  prun.partitions = 4;
  auto base = RunPartitioned(g, sources, options, prun);
  ASSERT_TRUE(base.ok());
  const uint64_t expected = DepthChecksum(base.value().groups);
  for (auto schedule :
       {gpusim::CommSchedule::kAllGather, gpusim::CommSchedule::kButterfly}) {
    for (int threads : {1, 4}) {
      EngineOptions opts = options;
      opts.threads = threads;
      PartitionRunOptions p = prun;
      p.schedule = schedule;
      auto result = RunPartitioned(g, sources, opts, p);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(DepthChecksum(result.value().groups), expected);
      // The schedule shapes time, never answers: compute matches exactly.
      EXPECT_DOUBLE_EQ(result.value().compute_seconds,
                       base.value().compute_seconds);
    }
  }
}

TEST(RunPartitionedTest, CommGrowsWithPartitionsAndButterflyWins) {
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  const auto sources = graph::SampleConnectedSources(g, 64, 1);
  const EngineOptions options = ParityOptions(Strategy::kBitwise);
  double last_comm = -1.0;
  for (int partitions : {1, 2, 4, 8}) {
    PartitionRunOptions prun;
    prun.partitions = partitions;
    auto ag = RunPartitioned(g, sources, options, prun);
    ASSERT_TRUE(ag.ok());
    EXPECT_GT(ag.value().comm_seconds, last_comm);
    last_comm = ag.value().comm_seconds;
    if (partitions == 1) {
      EXPECT_EQ(ag.value().comm_seconds, 0.0);
      EXPECT_EQ(ag.value().bytes_on_wire, 0);
      continue;
    }
    prun.schedule = gpusim::CommSchedule::kButterfly;
    auto bf = RunPartitioned(g, sources, options, prun);
    ASSERT_TRUE(bf.ok());
    EXPECT_EQ(bf.value().bytes_on_wire, ag.value().bytes_on_wire);
    if (partitions >= 4) {
      EXPECT_LT(bf.value().comm_seconds, ag.value().comm_seconds);
    }
  }
}

TEST(RunPartitionedTest, MaxLevelTruncatesLikeTheEngine) {
  const graph::Csr g = testing::MakeRmatGraph(7, 4);
  const auto sources = graph::SampleConnectedSources(g, 16, 1);
  EngineOptions options = ParityOptions(Strategy::kBitwise);
  options.traversal.max_level = 2;
  Engine engine(&g, options);
  auto baseline = engine.Run(sources);
  ASSERT_TRUE(baseline.ok());
  PartitionRunOptions prun;
  prun.partitions = 4;
  auto result = RunPartitioned(g, sources, options, prun);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(DepthChecksum(result.value().groups),
            DepthChecksum(baseline.value().groups));
}

TEST(RunPartitionedTest, ParityHoldsUnderFaultInjection) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = graph::SampleConnectedSources(g, 32, 1);
  EngineOptions options = ParityOptions(Strategy::kBitwise);
  Engine engine(&g, options);
  auto baseline = engine.Run(sources);
  ASSERT_TRUE(baseline.ok());
  const uint64_t expected = DepthChecksum(baseline.value().groups);

  auto plan = gpusim::FaultPlan::Parse(
      "seed=11,devices=4,p_fail=0.02,corrupt=0.1,straggle=1:3");
  ASSERT_TRUE(plan.ok());
  options.faults = plan.value();
  options.retry.max_attempts = 8;
  options.retry.initial_backoff_ms = 0.0;
  options.retry.max_backoff_ms = 0.0;
  for (int partitions : {2, 4}) {
    PartitionRunOptions prun;
    prun.partitions = partitions;
    auto result = RunPartitioned(g, sources, options, prun);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(DepthChecksum(result.value().groups), expected)
        << "P=" << partitions;
    // The chaos plan is dense enough that some recovery must have fired;
    // either retries (launch faults) or detected corruptions count.
    EXPECT_GT(result.value().retries + result.value().corruptions_detected, 0)
        << "P=" << partitions;
  }
}

TEST(RunPartitionedTest, StragglerStretchesComputeOnly) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = graph::SampleConnectedSources(g, 16, 1);
  EngineOptions options = ParityOptions(Strategy::kBitwise);
  PartitionRunOptions prun;
  prun.partitions = 4;
  auto clean = RunPartitioned(g, sources, options, prun);
  ASSERT_TRUE(clean.ok());

  auto plan = gpusim::FaultPlan::Parse("seed=1,devices=4,straggle=2:5");
  ASSERT_TRUE(plan.ok());
  options.faults = plan.value();
  auto slow = RunPartitioned(g, sources, options, prun);
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(DepthChecksum(slow.value().groups),
            DepthChecksum(clean.value().groups));
  // The straggler rank gates every level-synchronous step...
  EXPECT_GT(slow.value().compute_seconds, clean.value().compute_seconds);
  // ...but the frontier exchange is priced by the link model alone.
  EXPECT_DOUBLE_EQ(slow.value().comm_seconds, clean.value().comm_seconds);
}

TEST(RunPartitionedTest, ReportsPartitionAccounting) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = graph::SampleConnectedSources(g, 16, 1);
  PartitionRunOptions prun;
  prun.partitions = 3;
  prun.link_gbps = 50.0;
  prun.link_us = 1.0;
  auto result =
      RunPartitioned(g, sources, ParityOptions(Strategy::kBitwise), prun);
  ASSERT_TRUE(result.ok());
  const PartitionedRunResult& res = result.value();
  EXPECT_EQ(res.partitions, 3);
  EXPECT_DOUBLE_EQ(res.link.bandwidth_gbps, 50.0);
  EXPECT_DOUBLE_EQ(res.link.latency_us, 1.0);
  ASSERT_EQ(res.partition_vertices.size(), 3u);
  ASSERT_EQ(res.partition_edges.size(), 3u);
  ASSERT_EQ(res.device_seconds.size(), 3u);
  int64_t edges = 0;
  for (int64_t e : res.partition_edges) edges += e;
  EXPECT_EQ(edges, g.edge_count());
  EXPECT_GT(res.supersteps, 0);
  EXPECT_NEAR(res.sim_seconds, res.compute_seconds + res.comm_seconds, 1e-15);
  EXPECT_GT(res.teps, 0.0);
  EXPECT_FALSE(res.phases.empty());
  EXPECT_GT(res.totals.seconds, 0.0);
}

}  // namespace
}  // namespace ibfs
