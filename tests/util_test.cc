#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "gtest/gtest.h"
#include "util/bitops.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/prng.h"
#include "util/stats_math.h"
#include "util/status.h"

namespace ibfs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status FailsThrough() {
  IBFS_RETURN_NOT_OK(Status::Internal("inner"));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

TEST(PrngTest, DeterministicForSeed) {
  Prng a(123);
  Prng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(PrngTest, BoundedStaysInRange) {
  Prng prng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(prng.NextBounded(17), 17u);
  }
}

TEST(PrngTest, BoundedCoversRange) {
  Prng prng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(prng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(PrngTest, DoubleInUnitInterval) {
  Prng prng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = prng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(PrngTest, BoolRespectsProbabilityEdges) {
  Prng prng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(prng.NextBool(0.0));
    EXPECT_TRUE(prng.NextBool(1.0));
  }
}

TEST(BitopsTest, PopCountAndLowestSetBit) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(~uint64_t{0}), 64);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(LowestSetBit(0b1000), 3);
  EXPECT_EQ(LowestSetBit(uint64_t{1} << 63), 63);
}

TEST(BitopsTest, MasksAndBits) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(3), 0b111u);
  EXPECT_EQ(LowMask(64), ~uint64_t{0});
  EXPECT_EQ(Bit(0), 1u);
  EXPECT_TRUE(TestBit(0b100, 2));
  EXPECT_FALSE(TestBit(0b100, 1));
}

TEST(BitopsTest, RoundingHelpers) {
  EXPECT_EQ(RoundUp(5, 4), 8u);
  EXPECT_EQ(RoundUp(8, 4), 8u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
  EXPECT_EQ(CeilDiv(8, 4), 2u);
  EXPECT_EQ(CeilDiv(0, 4), 0u);
}

TEST(StatsMathTest, RunningStatsBasics) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  s.Add(2.0);
  s.Add(4.0);
  s.Add(6.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(8.0 / 3.0), 1e-12);
}

TEST(StatsMathTest, StdDevMatchesClosedForm) {
  const std::vector<double> vals = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(StdDev(vals), 0.0);
  const std::vector<double> vals2 = {0, 10};
  EXPECT_DOUBLE_EQ(StdDev(vals2), 5.0);
}

TEST(StatsMathTest, MeanAndGeoMean) {
  const std::vector<double> vals = {1.0, 4.0, 16.0};
  EXPECT_DOUBLE_EQ(Mean(vals), 7.0);
  EXPECT_NEAR(GeoMean(vals), 4.0, 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(GeoMean({}), 0.0);
}

TEST(CsvTest, PrintsHeaderAndAlignedRows) {
  CsvTable table({"graph", "teps"});
  table.Row().Add("FB").Add(12.345, 2);
  table.Row().Add("KG0").Add(int64_t{7});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph"), std::string::npos);
  EXPECT_NE(out.find("12.35"), std::string::npos);
  EXPECT_NE(out.find("KG0"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(EnvTest, DefaultsWhenUnset) {
  ::unsetenv("IBFS_TEST_KNOB");
  EXPECT_EQ(EnvInt64("IBFS_TEST_KNOB", 5), 5);
  EXPECT_EQ(EnvString("IBFS_TEST_KNOB", "dflt"), "dflt");
}

TEST(EnvTest, ParsesInteger) {
  ::setenv("IBFS_TEST_KNOB", "42", 1);
  EXPECT_EQ(EnvInt64("IBFS_TEST_KNOB", 5), 42);
  ::setenv("IBFS_TEST_KNOB", "not-a-number", 1);
  EXPECT_EQ(EnvInt64("IBFS_TEST_KNOB", 5), 5);
  ::unsetenv("IBFS_TEST_KNOB");
}

}  // namespace
}  // namespace ibfs
