// Tests for the release-grade extras: binary graph serialization,
// degree-ordered relabeling, distance matrices, and eccentricities.
#include <cstdio>
#include <numeric>

#include "apps/eccentricity.h"
#include "baselines/reference_bfs.h"
#include "core/shortest_paths.h"
#include "graph/io.h"
#include "graph/relabel.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::Csr;
using graph::VertexId;

TEST(BinaryIoTest, RoundTripsExactly) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  const std::string path = ::testing::TempDir() + "/ibfs_graph.bin";
  ASSERT_TRUE(graph::SaveBinary(g, path).ok());
  auto loaded = graph::LoadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Csr& h = loaded.value();
  ASSERT_EQ(h.vertex_count(), g.vertex_count());
  ASSERT_EQ(h.edge_count(), g.edge_count());
  for (int64_t v = 0; v < g.vertex_count(); ++v) {
    const auto a = g.OutNeighbors(static_cast<VertexId>(v));
    const auto b = h.OutNeighbors(static_cast<VertexId>(v));
    ASSERT_EQ(std::vector<VertexId>(a.begin(), a.end()),
              std::vector<VertexId>(b.begin(), b.end()));
    const auto ia = g.InNeighbors(static_cast<VertexId>(v));
    const auto ib = h.InNeighbors(static_cast<VertexId>(v));
    ASSERT_EQ(std::vector<VertexId>(ia.begin(), ia.end()),
              std::vector<VertexId>(ib.begin(), ib.end()));
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsGarbageAndTruncation) {
  const std::string path = ::testing::TempDir() + "/ibfs_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a graph", f);
    std::fclose(f);
  }
  EXPECT_FALSE(graph::LoadBinary(path).ok());

  // Valid header, truncated body.
  const Csr g = testing::MakeSmallGraph();
  ASSERT_TRUE(graph::SaveBinary(g, path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
  }
  EXPECT_FALSE(graph::LoadBinary(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIoError) {
  auto loaded = graph::LoadBinary("/nonexistent/ibfs.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(RelabelTest, MappingsAreInverse) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  auto relabeled = graph::RelabelByDegree(g);
  ASSERT_TRUE(relabeled.ok());
  const auto& r = relabeled.value();
  for (int64_t v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(r.old_id[r.new_id[v]], static_cast<VertexId>(v));
  }
}

TEST(RelabelTest, DegreesDescendInNewIds) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  auto relabeled = graph::RelabelByDegree(g);
  ASSERT_TRUE(relabeled.ok());
  const Csr& h = relabeled.value().graph;
  for (int64_t v = 0; v + 1 < h.vertex_count(); ++v) {
    EXPECT_GE(h.OutDegree(static_cast<VertexId>(v)),
              h.OutDegree(static_cast<VertexId>(v + 1)));
  }
}

TEST(RelabelTest, TraversalEquivalentAfterMappingBack) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  auto relabeled = graph::RelabelByDegree(g);
  ASSERT_TRUE(relabeled.ok());
  const auto& r = relabeled.value();
  const VertexId source = 37;
  const auto direct = baselines::ReferenceBfs(g, source);
  const auto on_new =
      baselines::ReferenceBfs(r.graph, r.new_id[source]);
  std::vector<uint8_t> new_depths;
  for (int32_t d : on_new) {
    new_depths.push_back(d < 0 ? 0xFF : static_cast<uint8_t>(d));
  }
  const auto mapped = graph::MapDepthsToOriginal(r, new_depths);
  for (int64_t v = 0; v < g.vertex_count(); ++v) {
    const int got = mapped[v] == 0xFF ? -1 : mapped[v];
    EXPECT_EQ(got, direct[v]) << "vertex " << v;
  }
}

TEST(DistanceMatrixTest, MatchesReference) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  std::vector<VertexId> sources = {0, 11, 54, 97};
  auto matrix = DistanceMatrix::Compute(g, sources);
  ASSERT_TRUE(matrix.ok());
  const auto& m = matrix.value();
  EXPECT_EQ(m.source_count(), 4);
  EXPECT_GT(m.sim_seconds(), 0.0);
  for (VertexId s : sources) {
    const int64_t row = m.RowOf(s);
    ASSERT_GE(row, 0);
    EXPECT_EQ(m.SourceAt(row), s);
    const auto ref = baselines::ReferenceBfs(g, s);
    for (int64_t v = 0; v < g.vertex_count(); ++v) {
      EXPECT_EQ(m.Distance(row, static_cast<VertexId>(v)), ref[v]);
    }
  }
}

TEST(DistanceMatrixTest, AllPairsSymmetricOnUndirectedGraph) {
  const Csr g = testing::MakeSmallGraph();
  auto matrix = DistanceMatrix::AllPairs(g);
  ASSERT_TRUE(matrix.ok());
  const auto& m = matrix.value();
  EXPECT_EQ(m.source_count(), g.vertex_count());
  for (int64_t u = 0; u < g.vertex_count(); ++u) {
    for (int64_t v = 0; v < g.vertex_count(); ++v) {
      EXPECT_EQ(m.Distance(m.RowOf(static_cast<VertexId>(u)),
                           static_cast<VertexId>(v)),
                m.Distance(m.RowOf(static_cast<VertexId>(v)),
                           static_cast<VertexId>(u)));
    }
  }
}

TEST(DistanceMatrixTest, RowOfNonSourceIsNegative) {
  const Csr g = testing::MakeSmallGraph();
  const std::vector<VertexId> sources = {1, 2};
  auto matrix = DistanceMatrix::Compute(g, sources);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix.value().RowOf(7), -1);
}

TEST(EccentricityTest, ChainHasKnownValues) {
  // Chain 0..9 (+island): ecc(0) = 9, ecc(5) = 5; diameter 9, radius <= 5.
  const Csr g = testing::MakeDisconnectedGraph(12);
  const std::vector<VertexId> sources = {0, 5, 9};
  auto result = apps::ComputeEccentricities(g, sources);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().eccentricity[0], 9);
  EXPECT_EQ(result.value().eccentricity[1], 5);
  EXPECT_EQ(result.value().eccentricity[2], 9);
  EXPECT_EQ(result.value().diameter_lower_bound, 9);
  EXPECT_EQ(result.value().radius_upper_bound, 5);
  EXPECT_GT(result.value().sim_seconds, 0.0);
}

TEST(EccentricityTest, AgreesAcrossStrategies) {
  const Csr g = testing::MakeRmatGraph(7, 8);
  const std::vector<VertexId> sources = {0, 1, 2, 3, 4, 5, 6, 7};
  EngineOptions bitwise;
  bitwise.strategy = Strategy::kBitwise;
  EngineOptions sequential;
  sequential.strategy = Strategy::kSequential;
  auto a = apps::ComputeEccentricities(g, sources, bitwise);
  auto b = apps::ComputeEccentricities(g, sources, sequential);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().eccentricity, b.value().eccentricity);
}

}  // namespace
}  // namespace ibfs
