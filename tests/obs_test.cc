#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/observe.h"
#include "gen/benchmarks.h"
#include "graph/components.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "util/logging.h"

namespace ibfs::obs {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(Json, WriterProducesParseableDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("name");
  w.String("a \"quoted\" value\nwith newline");
  w.Key("count");
  w.Int(-42);
  w.Key("big");
  w.Uint(uint64_t{1} << 63);
  w.Key("ratio");
  w.Double(0.125);
  w.Key("flag");
  w.Bool(true);
  w.Key("nothing");
  w.Null();
  w.Key("items");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Key("nested");
  w.Bool(false);
  w.EndObject();
  w.EndArray();
  w.EndObject();

  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.Find("name")->string_value(),
            "a \"quoted\" value\nwith newline");
  EXPECT_EQ(doc.Find("count")->number_value(), -42.0);
  EXPECT_EQ(doc.Find("ratio")->number_value(), 0.125);
  EXPECT_TRUE(doc.Find("flag")->bool_value());
  EXPECT_TRUE(doc.Find("nothing")->is_null());
  ASSERT_TRUE(doc.Find("items")->is_array());
  ASSERT_EQ(doc.Find("items")->array().size(), 3u);
  EXPECT_FALSE(doc.Find("items")->array()[2].Find("nested")->bool_value());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
}

TEST(Json, ParserHandlesEscapesAndNumbers) {
  auto parsed = ParseJson("{\"s\":\"tab\\tu\\u0041\",\"n\":-1.5e2}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("s")->string_value(), "tab\tuA");
  EXPECT_EQ(parsed.value().Find("n")->number_value(), -150.0);
}

// ------------------------------------------------------------- metrics --

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("engine.levels");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->value(), 5);
  // Create-on-first-use returns the same handle.
  EXPECT_EQ(registry.GetCounter("engine.levels"), c);
  EXPECT_EQ(registry.FindCounter("engine.levels"), c);
  EXPECT_EQ(registry.FindCounter("missing"), nullptr);

  Gauge* g = registry.GetGauge("engine.teps");
  g->Set(2.5);
  g->Set(3.5);
  EXPECT_EQ(g->value(), 3.5);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Metrics, HistogramBucketPlacement) {
  MetricsRegistry registry;
  const auto bounds = PowerOfTwoBounds(1.0, 4);  // 1, 2, 4, 8
  ASSERT_EQ(bounds.size(), 4u);
  Histogram* h = registry.GetHistogram("ibfs.jfq_size", bounds);
  h->Observe(1.0);   // bucket 0 (v <= 1)
  h->Observe(2.0);   // bucket 1
  h->Observe(3.0);   // bucket 2
  h->Observe(8.0);   // bucket 3
  h->Observe(100.0); // overflow
  EXPECT_EQ(h->count(), 5);
  EXPECT_EQ(h->sum(), 114.0);
  EXPECT_EQ(h->min(), 1.0);
  EXPECT_EQ(h->max(), 100.0);
  ASSERT_EQ(h->bucket_counts().size(), 5u);
  EXPECT_EQ(h->bucket_counts()[0], 1);
  EXPECT_EQ(h->bucket_counts()[1], 1);
  EXPECT_EQ(h->bucket_counts()[2], 1);
  EXPECT_EQ(h->bucket_counts()[3], 1);
  EXPECT_EQ(h->bucket_counts()[4], 1);
}

TEST(Metrics, PercentileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("empty", PowerOfTwoBounds(1.0, 4));
  EXPECT_EQ(h->Percentile(0.0), 0.0);
  EXPECT_EQ(h->Percentile(0.5), 0.0);
  EXPECT_EQ(h->Percentile(1.0), 0.0);
}

TEST(Metrics, PercentileInterpolatesWithinBucket) {
  // Bounds {1, 2, 4, 8}; 4 samples all land in the (2, 4] bucket, so the
  // bucket's span is clamped to [min, max] = [2.5, 4.0] and the rank is
  // interpolated linearly across it.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", PowerOfTwoBounds(1.0, 4));
  h->Observe(2.5);
  h->Observe(3.0);
  h->Observe(3.5);
  h->Observe(4.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 2.5);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 4.0);
  // rank 2 of 4 -> halfway through the only occupied bucket.
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 2.5 + 0.5 * (4.0 - 2.5));
  EXPECT_DOUBLE_EQ(h->Percentile(0.25), 2.5 + 0.25 * (4.0 - 2.5));
}

TEST(Metrics, PercentileWalksCumulativeCounts) {
  // 90 samples in bucket (<= 1], 10 in (4, 8]: p50 must sit in the first
  // bucket, p99 in the second, and the estimates must stay within the
  // observed [min, max] range.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("skew", PowerOfTwoBounds(1.0, 4));
  for (int i = 0; i < 90; ++i) h->Observe(1.0);
  for (int i = 0; i < 10; ++i) h->Observe(8.0);
  EXPECT_LE(h->Percentile(0.5), 1.0);
  EXPECT_GT(h->Percentile(0.95), 1.0);
  EXPECT_LE(h->Percentile(0.99), 8.0);
  EXPECT_GE(h->Percentile(0.99), 4.0);
  // Monotone in p.
  EXPECT_LE(h->Percentile(0.50), h->Percentile(0.95));
  EXPECT_LE(h->Percentile(0.95), h->Percentile(0.99));
}

TEST(Metrics, PercentileOverflowBucketClampsToMax) {
  // All mass beyond the last bound: the overflow bucket's upper edge is
  // the observed max, so no percentile can exceed it.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("over", PowerOfTwoBounds(1.0, 2));
  h->Observe(100.0);
  h->Observe(200.0);
  h->Observe(300.0);
  EXPECT_LE(h->Percentile(0.99), 300.0);
  EXPECT_GE(h->Percentile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 300.0);
  // Out-of-range p is clamped, not UB.
  EXPECT_DOUBLE_EQ(h->Percentile(2.0), 300.0);
  EXPECT_DOUBLE_EQ(h->Percentile(-1.0), h->Percentile(0.0));
}

TEST(Metrics, PercentileSaturatedOverflowBucketIsExactlyMax) {
  // Every sample in the overflow bucket (bounds {1, 2}): its upper edge is
  // the observed max and its lower edge clamps to the observed min, so the
  // whole percentile curve interpolates [min, max] exactly — p=1.0 must be
  // the max itself, not an extrapolation past the last bound.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("sat", PowerOfTwoBounds(1.0, 2));
  h->Observe(10.0);
  h->Observe(20.0);
  h->Observe(30.0);
  h->Observe(40.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 10.0);
  // rank p*4 of 4 across the clamped [10, 40] span.
  EXPECT_DOUBLE_EQ(h->Percentile(0.5), 10.0 + 0.5 * 30.0);
  EXPECT_DOUBLE_EQ(h->Percentile(0.75), 10.0 + 0.75 * 30.0);
}

TEST(Metrics, PercentileOfSingleSampleIsTheSampleAtEveryP) {
  // One observation: min == max == the sample, so every percentile —
  // including the boundary p values — must return it exactly.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("one", PowerOfTwoBounds(1.0, 4));
  h->Observe(3.0);
  for (double p : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h->Percentile(p), 3.0) << "p=" << p;
  }
}

TEST(Metrics, PercentileSampleExactlyOnBucketBoundStaysInLowerBucket) {
  // Buckets are right-inclusive — bucket i covers (bounds[i-1], bounds[i]]
  // — so a sample exactly on a bound counts in the bucket it bounds from
  // above, and a single such sample reads back exactly.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("edge", PowerOfTwoBounds(1.0, 4));
  h->Observe(4.0);  // exactly bounds[2] -> bucket (2, 4]
  ASSERT_EQ(h->bucket_counts()[2], 1);
  EXPECT_EQ(h->bucket_counts()[3], 0);
  for (double p : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(h->Percentile(p), 4.0) << "p=" << p;
  }
  // Two on-bound samples in different buckets: the interpolated median
  // never leaves the observed [min, max] range.
  h->Observe(2.0);  // exactly bounds[1] -> bucket (1, 2]
  EXPECT_DOUBLE_EQ(h->Percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h->Percentile(1.0), 4.0);
  EXPECT_GE(h->Percentile(0.5), 2.0);
  EXPECT_LE(h->Percentile(0.5), 4.0);
}

TEST(Metrics, BucketPercentileSingleOccupiedBucketSpansMinToMax) {
  // Direct pin of the free estimator that windowed histograms share with
  // Histogram::Percentile. One occupied interior bucket: the curve must
  // interpolate exactly [min, max] with p=0 the min and p=100% the max.
  const std::vector<double> bounds = PowerOfTwoBounds(1.0, 4);  // {1,2,4,8}
  std::vector<int64_t> counts(bounds.size() + 1, 0);
  counts[2] = 5;  // all mass in (2, 4]
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, counts, 5, 2.5, 3.5, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, counts, 5, 2.5, 3.5, 1.0), 3.5);
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, counts, 5, 2.5, 3.5, 0.5),
                   2.5 + 0.5 * (3.5 - 2.5));
  // A count of one collapses the span: every p returns the sample.
  std::vector<int64_t> one(bounds.size() + 1, 0);
  one[2] = 1;
  for (double p : {0.0, 0.3, 1.0}) {
    EXPECT_DOUBLE_EQ(BucketPercentile(bounds, one, 1, 3.0, 3.0, p), 3.0);
  }
}

TEST(Metrics, BucketPercentileBoundaryPsAndEmptyInput) {
  const std::vector<double> bounds = PowerOfTwoBounds(1.0, 3);  // {1,2,4}
  const std::vector<int64_t> empty(bounds.size() + 1, 0);
  EXPECT_EQ(BucketPercentile(bounds, empty, 0, 0.0, 0.0, 0.5), 0.0);
  // Mass split across first bucket and overflow: p=0 pins the observed
  // min, p=100% the observed max, out-of-range p is clamped not UB, and
  // the curve stays inside [min, max] everywhere between.
  std::vector<int64_t> counts(bounds.size() + 1, 0);
  counts[0] = 3;
  counts[bounds.size()] = 3;
  const double min = 0.5;
  const double max = 9.0;
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, counts, 6, min, max, 0.0), min);
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, counts, 6, min, max, 1.0), max);
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, counts, 6, min, max, -0.5), min);
  EXPECT_DOUBLE_EQ(BucketPercentile(bounds, counts, 6, min, max, 2.0), max);
  for (double p : {0.1, 0.5, 0.9}) {
    const double v = BucketPercentile(bounds, counts, 6, min, max, p);
    EXPECT_GE(v, min) << "p=" << p;
    EXPECT_LE(v, max) << "p=" << p;
  }
}

TEST(Metrics, SnapshotRoundTripsThroughValidator) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Increment(7);
  registry.GetGauge("a.gauge")->Set(1.25);
  Histogram* h = registry.GetHistogram("a.hist", PowerOfTwoBounds(1.0, 3));
  h->Observe(2.0);
  h->Observe(16.0);

  auto parsed = ParseJson(registry.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateMetrics(parsed.value()).ok());
  const JsonValue* counters = parsed.value().Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("a.count")->number_value(), 7.0);
}

// ------------------------------------------------------------- tracing --

TEST(Trace, SpanNestingBalancesPerTrack) {
  Tracer tracer;
  const TraceTrack track{0, 0};
  tracer.BeginSpan(track, "outer", "host", 0.0);
  tracer.BeginSpan(track, "inner", "host", 10.0);
  EXPECT_EQ(tracer.OpenSpans(track), 2u);
  tracer.EndSpan(track, 20.0, {Arg("k", int64_t{1})});
  tracer.EndSpan(track, 30.0);
  EXPECT_EQ(tracer.OpenSpans(track), 0u);
  // Unmatched End is dropped, not fatal.
  tracer.EndSpan(track, 40.0);
  EXPECT_EQ(tracer.event_count(), 2u);
}

TEST(Trace, WriteJsonIsValidChromeTrace) {
  Tracer tracer;
  tracer.SetProcessName(0, "GPU 0 (simulated time)");
  tracer.SetThreadName(0, 0, "traversal");
  tracer.CompleteSpan({0, 0}, "level 0", "level", 0.0, 5.0,
                      {Arg("direction", "top_down"),
                       Arg("jfq_size", int64_t{12}), Arg("ratio", 0.5),
                       Arg("finished", false)});
  tracer.Instant({0, 0}, "direction_switch", 5.0,
                 {Arg("to", "bottom_up")});
  tracer.CounterValue({0, 0}, "jfq_size", 0.0, 12.0);

  std::ostringstream os;
  tracer.WriteJson(os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateTrace(parsed.value(), /*require_spans=*/true).ok());

  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 2 metadata + 1 span + 1 instant + 1 counter.
  EXPECT_EQ(events->array().size(), 5u);
  bool saw_span = false;
  for (const JsonValue& e : events->array()) {
    if (e.Find("ph")->string_value() != "X") continue;
    saw_span = true;
    EXPECT_EQ(e.Find("name")->string_value(), "level 0");
    EXPECT_EQ(e.Find("cat")->string_value(), "level");
    EXPECT_EQ(e.Find("dur")->number_value(), 5.0);
    const JsonValue* args = e.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->Find("direction")->string_value(), "top_down");
    EXPECT_EQ(args->Find("jfq_size")->number_value(), 12.0);
    EXPECT_FALSE(args->Find("finished")->bool_value());
  }
  EXPECT_TRUE(saw_span);
}

TEST(Trace, ValidatorRejectsNonTraceDocuments) {
  auto not_object = ParseJson("[1,2]");
  ASSERT_TRUE(not_object.ok());
  EXPECT_FALSE(ValidateTrace(not_object.value()).ok());

  auto no_events = ParseJson("{\"foo\":1}");
  ASSERT_TRUE(no_events.ok());
  EXPECT_FALSE(ValidateTrace(no_events.value()).ok());

  // Empty trace is structurally fine unless spans are required.
  auto empty = ParseJson("{\"traceEvents\":[]}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(ValidateTrace(empty.value()).ok());
  EXPECT_FALSE(ValidateTrace(empty.value(), /*require_spans=*/true).ok());
}

// ---------------------------------------------------------- run report --

RunReport SampleReport() {
  RunReport report;
  report.graph = "FB";
  report.vertex_count = 1024;
  report.edge_count = 8192;
  report.strategy = "bitwise";
  report.grouping = "groupby";
  report.instances = 64;
  report.group_size = 32;
  report.sim_seconds = 0.25;
  report.wall_seconds = 0.01;
  report.teps = 2e6;
  report.sharing_ratio = 0.5;
  report.rule_matched = 48;

  ReportGroup group;
  group.index = 0;
  group.instance_count = 32;
  group.sim_seconds = 0.125;
  group.sharing_degree = 16.0;
  group.sharing_ratio = 0.5;
  group.hub = 7;
  group.sources = {1, 2, 3};
  ReportLevel level;
  level.level = 0;
  level.bottom_up = false;
  level.jfq_size = 3;
  level.private_fq_sum = 3;
  level.edges_inspected = 24;
  level.new_visits = 21;
  group.levels.push_back(level);
  report.groups.push_back(group);

  ReportPhase phase;
  phase.name = "td_inspect";
  phase.seconds = 0.2;
  phase.launches = 4;
  phase.load_transactions = 100;
  phase.store_transactions = 50;
  report.phases.push_back(phase);
  report.totals = phase;
  report.totals.name = "TOTAL";
  return report;
}

TEST(Report, RoundTripsThroughValidator) {
  const RunReport report = SampleReport();
  std::ostringstream os;
  report.WriteJson(os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateRunReport(parsed.value()).ok())
      << ValidateRunReport(parsed.value()).ToString();

  const JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.Find("schema")->string_value(), "ibfs.run_report");
  EXPECT_EQ(doc.Find("workload")->Find("graph")->string_value(), "FB");
  EXPECT_EQ(doc.Find("workload")->Find("instances")->number_value(), 64.0);
  EXPECT_EQ(doc.Find("results")->Find("sharing_ratio")->number_value(), 0.5);
  ASSERT_EQ(doc.Find("groups")->array().size(), 1u);
  const JsonValue& group = doc.Find("groups")->array()[0];
  EXPECT_EQ(group.Find("hub")->number_value(), 7.0);
  ASSERT_EQ(group.Find("levels")->array().size(), 1u);
  EXPECT_EQ(group.Find("levels")->array()[0].Find("direction")->string_value(),
            "top_down");
}

TEST(Report, EmbedsMetricsWhenGiven) {
  MetricsRegistry registry;
  registry.GetCounter("engine.levels")->Increment(3);
  const RunReport report = SampleReport();
  std::ostringstream os;
  report.WriteJson(os, &registry);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateRunReport(parsed.value()).ok());
  const JsonValue* metrics = parsed.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(ValidateMetrics(*metrics).ok());
  EXPECT_EQ(metrics->Find("counters")->Find("engine.levels")->number_value(),
            3.0);
}

TEST(Report, ClusterSectionValidates) {
  RunReport report = SampleReport();
  report.has_cluster = true;
  report.cluster.device_count = 4;
  report.cluster.policy = "round-robin";
  report.cluster.makespan_seconds = 0.08;
  report.cluster.speedup = 3.1;
  report.cluster.teps = 8e6;
  report.cluster.device_seconds = {0.08, 0.07, 0.06, 0.04};
  std::ostringstream os;
  report.WriteJson(os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateRunReport(parsed.value()).ok())
      << ValidateRunReport(parsed.value()).ToString();
  EXPECT_EQ(parsed.value().Find("cluster")->Find("device_count")
                ->number_value(),
            4.0);
}

// ------------------------------------------------------ service report --

ServiceReport SampleServiceReport() {
  ServiceReport report;
  report.graph = "PK";
  report.vertex_count = 4096;
  report.edge_count = 65536;
  report.strategy = "bitwise";
  report.grouping = "groupby";
  report.arrival = "poisson";
  report.offered_qps = 500.0;
  report.duration_seconds = 2.0;
  report.queries = 1000;
  report.max_batch = 64;
  report.max_delay_ms = 2.0;
  report.execute_threads = 4;
  report.batches = 20;
  report.groups = 40;
  report.size_closes = 12;
  report.deadline_closes = 7;
  report.shutdown_closes = 1;
  report.mean_batch_size = 50.0;
  report.completed = 998;
  report.failed = 2;
  report.achieved_qps = 490.0;
  report.wall_seconds = 2.04;
  report.sim_seconds = 0.5;
  report.teps = 1e8;
  report.sharing_ratio = 0.45;
  report.oracle_sharing_ratio = 0.5;
  report.sharing_fraction = 0.9;
  report.queue_ms = {0.5, 1.5, 1.9, 0.8, 2.2};
  report.execute_ms = {1.0, 2.0, 2.5, 1.2, 3.0};
  report.total_ms = {1.5, 3.5, 4.4, 2.0, 5.2};
  return report;
}

TEST(ServiceReportJson, RoundTripsThroughValidator) {
  const ServiceReport report = SampleServiceReport();
  std::ostringstream os;
  report.WriteJson(os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateServiceReport(parsed.value()).ok())
      << ValidateServiceReport(parsed.value()).ToString();

  const JsonValue& doc = parsed.value();
  EXPECT_EQ(doc.Find("schema")->string_value(), "ibfs.service_report");
  EXPECT_EQ(doc.Find("workload")->Find("arrival")->string_value(),
            "poisson");
  EXPECT_EQ(doc.Find("service")->Find("max_batch")->number_value(), 64.0);
  EXPECT_EQ(doc.Find("results")->Find("sharing_fraction")->number_value(),
            0.9);
  const JsonValue* total = doc.Find("latency_ms")->Find("total");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->Find("p50")->number_value(), 1.5);
  EXPECT_EQ(total->Find("p99")->number_value(), 4.4);
}

TEST(ServiceReportJson, EmbedsMetricsWhenGiven) {
  MetricsRegistry registry;
  registry.GetCounter("service.queries")->Increment(7);
  const ServiceReport report = SampleServiceReport();
  std::ostringstream os;
  report.WriteJson(os, &registry);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateServiceReport(parsed.value()).ok());
  const JsonValue* metrics = parsed.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_TRUE(ValidateMetrics(*metrics).ok());
}

TEST(ServiceReportJson, ValidatorRejectsBrokenDocuments) {
  // Wrong schema string.
  auto wrong = ParseJson("{\"schema\":\"ibfs.run_report\",\"version\":1}");
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(ValidateServiceReport(wrong.value()).ok());

  // Structurally valid document with out-of-order percentiles must fail.
  ServiceReport report = SampleServiceReport();
  report.total_ms.p50 = 9.0;  // > p95
  std::ostringstream os;
  report.WriteJson(os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(ValidateServiceReport(parsed.value()).ok());

  // Missing sections.
  auto bare = ParseJson(
      "{\"schema\":\"ibfs.service_report\",\"version\":1}");
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(ValidateServiceReport(bare.value()).ok());
}

// ------------------------------------------------ engine integration --

class ObsEngineTest : public ::testing::Test {
 protected:
  static constexpr int kInstances = 64;

  graph::Csr MakeGraph() {
    auto result = gen::GenerateBenchmark(gen::BenchmarkId::kPK, 0);
    IBFS_CHECK(result.ok());
    return std::move(result).value();
  }
};

TEST_F(ObsEngineTest, InstrumentedRunEmitsSpansPerLevelAndValidates) {
  const graph::Csr graph = MakeGraph();
  Tracer tracer;
  MetricsRegistry metrics;
  EngineOptions options;
  options.strategy = Strategy::kBitwise;
  options.grouping = GroupingPolicy::kGroupBy;
  options.group_size = 32;
  options.keep_depths = false;
  options.observer.tracer = &tracer;
  options.observer.metrics = &metrics;

  const auto sources = graph::SampleConnectedSources(graph, kInstances, 1);
  Engine engine(&graph, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const EngineResult& res = result.value();
  EXPECT_GT(res.wall_seconds, 0.0);

  // One "level" span per traversal level of every group, plus group spans,
  // kernel spans, and the host-side grouping span.
  int64_t total_levels = 0;
  for (const GroupResult& g : res.groups) {
    total_levels += static_cast<int64_t>(g.trace.levels.size());
  }
  ASSERT_GT(total_levels, 0);

  std::ostringstream os;
  tracer.WriteJson(os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(ValidateTrace(parsed.value(), /*require_spans=*/true).ok());

  int64_t level_spans = 0;
  int64_t group_spans = 0;
  int64_t kernel_spans = 0;
  int64_t host_spans = 0;
  for (const JsonValue& e : parsed.value().Find("traceEvents")->array()) {
    const JsonValue* cat = e.Find("cat");
    if (cat == nullptr || e.Find("ph")->string_value() != "X") continue;
    if (cat->string_value() == "level") ++level_spans;
    if (cat->string_value() == "group") ++group_spans;
    if (cat->string_value() == "kernel") ++kernel_spans;
    if (cat->string_value() == "host") ++host_spans;
  }
  EXPECT_EQ(level_spans, total_levels);
  EXPECT_EQ(group_spans, static_cast<int64_t>(res.groups.size()));
  EXPECT_GT(kernel_spans, 0);
  EXPECT_GE(host_spans, 1);  // the grouping phase

  // Metrics agree with the trace.
  const Counter* levels = metrics.FindCounter("engine.levels");
  ASSERT_NE(levels, nullptr);
  EXPECT_EQ(levels->value(), total_levels);
  EXPECT_NE(metrics.FindCounter("gpusim.kernel_launches"), nullptr);
  EXPECT_EQ(metrics.FindCounter("gpusim.kernel_launches")->value(),
            kernel_spans);
}

TEST_F(ObsEngineTest, BuildRunReportMatchesEngineResult) {
  const graph::Csr graph = MakeGraph();
  EngineOptions options;
  options.strategy = Strategy::kBitwise;
  options.grouping = GroupingPolicy::kGroupBy;
  options.group_size = 32;
  options.keep_depths = false;
  const auto sources = graph::SampleConnectedSources(graph, kInstances, 1);
  Engine engine(&graph, options);
  auto result = engine.Run(sources);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const EngineResult& res = result.value();

  const RunReport report =
      BuildRunReport("PK", graph, options, kInstances, res);
  EXPECT_EQ(report.graph, "PK");
  EXPECT_EQ(report.strategy, "bitwise");
  EXPECT_EQ(report.grouping, "groupby");
  EXPECT_EQ(report.instances, kInstances);
  EXPECT_EQ(report.groups.size(), res.groups.size());
  EXPECT_DOUBLE_EQ(report.sim_seconds, res.sim_seconds);
  EXPECT_DOUBLE_EQ(report.sharing_ratio, res.SharingRatio());
  EXPECT_DOUBLE_EQ(report.teps, res.teps);
  EXPECT_EQ(report.rule_matched, res.rule_matched);
  // Totals row matches the device counters.
  EXPECT_EQ(report.totals.load_transactions,
            res.totals.mem.load_transactions);
  EXPECT_EQ(report.totals.store_transactions,
            res.totals.mem.store_transactions);
  EXPECT_FALSE(report.phases.empty());

  std::ostringstream os;
  report.WriteJson(os);
  auto parsed = ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ValidateRunReport(parsed.value()).ok())
      << ValidateRunReport(parsed.value()).ToString();
}

// ------------------------------------------------------------- logging --

TEST(Logging, ParseLogLevelAcceptsNamesAndNumbers) {
  using internal_logging::ParseLogLevel;
  EXPECT_EQ(ParseLogLevel("info"), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogLevel("WARNING"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogSeverity::kError);
  EXPECT_EQ(ParseLogLevel("fatal"), LogSeverity::kFatal);
  EXPECT_EQ(ParseLogLevel("2"), LogSeverity::kError);
  EXPECT_EQ(ParseLogLevel("bogus"), LogSeverity::kInfo);
}

}  // namespace
}  // namespace ibfs::obs
