#include <vector>

#include "baselines/reference_bfs.h"
#include "core/validate.h"
#include "gpusim/device.h"
#include "gtest/gtest.h"
#include "ibfs/runner.h"
#include "ibfs/status_array.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::VertexId;

std::vector<uint8_t> RefDepths(const graph::Csr& g, VertexId s) {
  std::vector<uint8_t> depths;
  for (int32_t d : baselines::ReferenceBfs(g, s)) {
    depths.push_back(d < 0 ? kUnvisitedDepth : static_cast<uint8_t>(d));
  }
  return depths;
}

TEST(ValidateDepthsTest, AcceptsCorrectDepths) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  for (VertexId s : {0u, 5u, 100u}) {
    EXPECT_TRUE(ValidateBfsDepths(g, s, RefDepths(g, s)).ok());
  }
}

TEST(ValidateDepthsTest, RejectsWrongSourceDepth) {
  const graph::Csr g = testing::MakeSmallGraph();
  auto depths = RefDepths(g, 0);
  depths[0] = 1;
  EXPECT_FALSE(ValidateBfsDepths(g, 0, depths).ok());
}

TEST(ValidateDepthsTest, RejectsSkippedLevel) {
  const graph::Csr g = testing::MakeSmallGraph();
  auto depths = RefDepths(g, 0);
  // Push one vertex a level too deep: edge condition breaks.
  for (size_t v = 1; v < depths.size(); ++v) {
    if (depths[v] == 1) {
      depths[v] = 2;
      break;
    }
  }
  EXPECT_FALSE(ValidateBfsDepths(g, 0, depths).ok());
}

TEST(ValidateDepthsTest, RejectsUnreachedNeighborOfVisited) {
  const graph::Csr g = testing::MakeSmallGraph();
  auto depths = RefDepths(g, 0);
  depths[8] = kUnvisitedDepth;  // vertex 8 is reachable via 7
  EXPECT_FALSE(ValidateBfsDepths(g, 0, depths).ok());
}

TEST(ValidateDepthsTest, RejectsSecondZeroDepth) {
  const graph::Csr g = testing::MakeSmallGraph();
  auto depths = RefDepths(g, 0);
  depths[4] = 0;
  EXPECT_FALSE(ValidateBfsDepths(g, 0, depths).ok());
}

TEST(ValidateDepthsTest, RespectsMaxLevelTruncation) {
  const graph::Csr g = testing::MakeDisconnectedGraph(12);
  std::vector<uint8_t> depths;
  for (int32_t d : baselines::ReferenceBfs(g, 0, 2)) {
    depths.push_back(d < 0 ? kUnvisitedDepth : static_cast<uint8_t>(d));
  }
  EXPECT_TRUE(ValidateBfsDepths(g, 0, depths, 2).ok());
  // The same truncated depths fail an untruncated validation (vertex at
  // depth 2 has an unvisited neighbor).
  EXPECT_FALSE(ValidateBfsDepths(g, 0, depths).ok());
}

TEST(ValidateDepthsTest, RejectsSizeMismatch) {
  const graph::Csr g = testing::MakeSmallGraph();
  std::vector<uint8_t> depths(3, 0);
  EXPECT_FALSE(ValidateBfsDepths(g, 0, depths).ok());
}

TEST(ValidateDepthsTest, AllStrategyOutputsValidate) {
  const graph::Csr g = testing::MakeRmatGraph(7, 10);
  std::vector<VertexId> sources;
  for (int i = 0; i < 16; ++i) sources.push_back(static_cast<VertexId>(i));
  for (Strategy s : {Strategy::kSequential, Strategy::kNaiveConcurrent,
                     Strategy::kJointTraversal, Strategy::kBitwise}) {
    gpusim::Device device;
    auto result = RunGroup(s, g, sources, {}, &device);
    ASSERT_TRUE(result.ok());
    for (size_t j = 0; j < sources.size(); ++j) {
      EXPECT_TRUE(
          ValidateBfsDepths(g, sources[j], result.value().depths[j]).ok())
          << StrategyName(s) << " instance " << j;
    }
  }
}

TEST(ValidateTreeTest, SequentialParentsFormValidTrees) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  std::vector<VertexId> sources = {0, 3, 9, 27};
  TraversalOptions options;
  options.record_parents = true;
  for (Strategy s : {Strategy::kSequential, Strategy::kNaiveConcurrent}) {
    gpusim::Device device;
    auto result = RunGroup(s, g, sources, options, &device);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result.value().parents.size(), sources.size());
    for (size_t j = 0; j < sources.size(); ++j) {
      EXPECT_TRUE(ValidateBfsTree(g, sources[j], result.value().parents[j],
                                  result.value().depths[j])
                      .ok())
          << StrategyName(s) << " instance " << j;
    }
  }
}

TEST(ValidateTreeTest, ParentsOffByDefault) {
  const graph::Csr g = testing::MakeSmallGraph();
  const std::vector<VertexId> sources = {0};
  gpusim::Device device;
  auto result = RunGroup(Strategy::kSequential, g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().parents.empty());
}

TEST(ValidateTreeTest, RejectsCorruptedParent) {
  const graph::Csr g = testing::MakeSmallGraph();
  const std::vector<VertexId> sources = {0};
  TraversalOptions options;
  options.record_parents = true;
  gpusim::Device device;
  auto result = RunGroup(Strategy::kSequential, g, sources, options, &device);
  ASSERT_TRUE(result.ok());
  auto parents = result.value().parents[0];
  const auto& depths = result.value().depths[0];
  ASSERT_TRUE(ValidateBfsTree(g, 0, parents, depths).ok());
  // Parent that is not one level up.
  parents[8] = 8;
  EXPECT_FALSE(ValidateBfsTree(g, 0, parents, depths).ok());
  // Source not its own parent.
  auto parents2 = result.value().parents[0];
  parents2[0] = 1;
  EXPECT_FALSE(ValidateBfsTree(g, 0, parents2, depths).ok());
}

}  // namespace
}  // namespace ibfs
