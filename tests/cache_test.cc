// Tests of the serving-layer caches: option validation, result-cache
// hit/miss/LRU/quarantine semantics, plan-cache memoization, and the
// service-level integration — cache hits resolve at admission with
// bit-identical answers, corrupted entries are quarantined and
// re-executed, and the cache never changes depths under any combination
// of executor width and injected faults. Every suite name starts with
// "Cache" so the tsan preset's test filter picks all of it up.
#include <algorithm>
#include <future>
#include <map>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/group_plan.h"
#include "gpusim/fault.h"
#include "graph/builder.h"
#include "graph/components.h"
#include "graph/partition.h"
#include "service/cache.h"
#include "service/service.h"
#include "service/workload.h"
#include "test_util.h"
#include "util/checksum.h"

namespace ibfs::service {
namespace {

using ::ibfs::testing::MakeRmatGraph;
using ::ibfs::testing::MakeSmallGraph;

CachedDepths MakeValue(std::vector<uint8_t> depths) {
  CachedDepths value;
  value.checksum = Fnv1a(depths);
  value.reached = static_cast<int64_t>(
      std::count_if(depths.begin(), depths.end(),
                    [](uint8_t d) { return d != 0xff; }));
  value.depths = std::move(depths);
  return value;
}

// ------------------------------------------------------------ validation --

TEST(CacheOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(CacheOptions{}.Validate().ok());
}

TEST(CacheOptionsTest, RejectsNegativeBudget) {
  CacheOptions options;
  options.result_budget_bytes = -1;
  EXPECT_FALSE(options.Validate().ok());
  // Zero is a degenerate but legal budget: the result cache admits
  // nothing while the plan cache keeps memoizing.
  options.result_budget_bytes = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(CacheOptionsTest, RejectsNonPositiveShards) {
  CacheOptions options;
  options.shards = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(CacheOptionsTest, RejectsNegativePlanCapacity) {
  CacheOptions options;
  options.plan_capacity = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(CacheOptionsTest, ServiceValidateChecksCacheOptions) {
  ServiceOptions options;
  options.cache.shards = -4;
  EXPECT_FALSE(options.Validate().ok());
}

// ---------------------------------------------------------- result cache --

TEST(CacheResultTest, MissThenHitRoundTripsValue) {
  ResultCache cache(/*graph_fingerprint=*/0xabcd, Strategy::kBitwise,
                    CacheOptions{});
  EXPECT_FALSE(cache.Get(7).has_value());
  cache.Put(7, MakeValue({0, 1, 2, 0xff}));
  auto hit = cache.Get(7);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->depths, (std::vector<uint8_t>{0, 1, 2, 0xff}));
  EXPECT_EQ(hit->reached, 3);
  EXPECT_EQ(hit->checksum, Fnv1a(hit->depths));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes_resident, 0);
}

TEST(CacheResultTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  CacheOptions options;
  options.shards = 1;  // one LRU list so recency order is observable
  // Room for roughly two 64-byte vectors plus per-entry overhead.
  options.result_budget_bytes = 2 * (64 + 96);
  ResultCache cache(1, Strategy::kBitwise, options);
  cache.Put(1, MakeValue(std::vector<uint8_t>(64, 1)));
  cache.Put(2, MakeValue(std::vector<uint8_t>(64, 2)));
  ASSERT_TRUE(cache.Get(1).has_value());  // refresh 1; now 2 is LRU
  cache.Put(3, MakeValue(std::vector<uint8_t>(64, 3)));
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_GE(cache.stats().evictions, 1);
  EXPECT_LE(cache.bytes_resident(), options.result_budget_bytes);
}

TEST(CacheResultTest, OversizedEntryIsNotAdmitted) {
  CacheOptions options;
  options.shards = 1;
  options.result_budget_bytes = 128;
  ResultCache cache(1, Strategy::kBitwise, options);
  cache.Put(5, MakeValue(std::vector<uint8_t>(4096, 1)));
  EXPECT_FALSE(cache.Get(5).has_value());
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(CacheResultTest, CorruptedEntryIsQuarantinedAndReinsertable) {
  ResultCache cache(1, Strategy::kBitwise, CacheOptions{});
  cache.Put(9, MakeValue({0, 1, 1, 2}));
  ASSERT_TRUE(cache.CorruptEntryForTest(9));
  // The read detects the checksum mismatch, drops the entry, and misses.
  EXPECT_FALSE(cache.Get(9).has_value());
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.quarantined, 1);
  EXPECT_EQ(stats.entries, 0);
  // Quarantine is not a ban: the source can be cached again afterwards.
  cache.Put(9, MakeValue({0, 1, 1, 2}));
  EXPECT_TRUE(cache.Get(9).has_value());
}

TEST(CacheResultTest, CorruptEntryForTestReportsAbsentSource) {
  ResultCache cache(1, Strategy::kBitwise, CacheOptions{});
  EXPECT_FALSE(cache.CorruptEntryForTest(42));
}

TEST(CachePartitionKeyTest, SaltedFingerprintsKeepTwinPartitionsApart) {
  // Two disjoint identical 8-rings; the 1D edge cut lands exactly on the
  // component boundary, so the two partitions' local CSRs have the same
  // shape (identical row offsets, adjacency differing only by the +8 id
  // shift). Regression: a cache key derived from local topology alone is
  // one id-pattern coincidence away from letting partition 1's cache
  // serve partition 0's depths. GraphPartition::Fingerprint salts the
  // topology digest with the owner vertex range, which separates the keys
  // unconditionally.
  graph::GraphBuilder builder(16);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 8; ++i) {
      builder.AddUndirectedEdge(
          static_cast<graph::VertexId>(c * 8 + i),
          static_cast<graph::VertexId>(c * 8 + (i + 1) % 8));
    }
  }
  auto built = std::move(builder).Build();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const graph::Csr graph = std::move(built).value();
  auto parted = graph::PartitionByEdges1D(graph, 2);
  ASSERT_TRUE(parted.ok()) << parted.status().ToString();
  const graph::Partitioning& parts = parted.value();
  ASSERT_EQ(parts.parts[0].range.end, 8u);
  ASSERT_EQ(parts.parts[0].local.edge_count(),
            parts.parts[1].local.edge_count());

  const uint64_t key0 = parts.parts[0].Fingerprint();
  const uint64_t key1 = parts.parts[1].Fingerprint();
  EXPECT_NE(key0, key1);

  // The serving consequence: each partition's ResultCache stamps entries
  // with its own key, and Get rejects any entry whose stored fingerprint
  // disagrees — so a warmup replay or replication fan-out that offers
  // partition 0's bytes to partition 1's cache is rejected as a stale
  // graph rather than served as a hit.
  ResultCache cache0(key0, Strategy::kBitwise, CacheOptions{});
  ResultCache cache1(key1, Strategy::kBitwise, CacheOptions{});
  cache0.Put(3, MakeValue({0, 1, 2, 0xff}));
  ASSERT_TRUE(cache0.Get(3).has_value());
  EXPECT_FALSE(cache1.Get(3).has_value());
  cache1.Put(3, MakeValue({2, 1, 0, 0xff}));
  auto hit0 = cache0.Get(3);
  auto hit1 = cache1.Get(3);
  ASSERT_TRUE(hit0.has_value());
  ASSERT_TRUE(hit1.has_value());
  EXPECT_NE(hit0->depths, hit1->depths);
}

TEST(CacheResultTest, ClearDropsEverything) {
  ResultCache cache(1, Strategy::kBitwise, CacheOptions{});
  cache.Put(1, MakeValue({0, 1}));
  cache.Put(2, MakeValue({1, 0}));
  cache.Clear();
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.bytes_resident(), 0);
}

// ------------------------------------------------------------ plan cache --

TEST(CachePlanTest, MemoizesExactSourceSet) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  EngineOptions engine;
  engine.strategy = Strategy::kBitwise;
  engine.grouping = GroupingPolicy::kGroupBy;
  engine.group_size = 16;
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 32, 7);
  std::vector<graph::VertexId> sorted = sources;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  PlanCache cache(GroupConfigFingerprint(engine), /*capacity=*/8);
  EXPECT_FALSE(cache.Get(sorted).has_value());
  auto plan = GroupSources(graph, sorted, engine);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  cache.Put(sorted, plan.value());
  auto memoized = cache.Get(sorted);
  ASSERT_TRUE(memoized.has_value());
  EXPECT_EQ(memoized->group_size, plan.value().group_size);
  EXPECT_EQ(memoized->grouping.groups, plan.value().grouping.groups);
  EXPECT_EQ(memoized->grouping.group_hubs, plan.value().grouping.group_hubs);

  // A different source set misses even though the config matches.
  std::vector<graph::VertexId> other(sorted.begin(), sorted.end() - 1);
  EXPECT_FALSE(cache.Get(other).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.plan_hits, 1);
  EXPECT_EQ(stats.plan_misses, 2);
  EXPECT_EQ(stats.plan_insertions, 1);
}

TEST(CachePlanTest, EvictsAtCapacity) {
  PlanCache cache(/*config_fingerprint=*/1, /*capacity=*/2);
  GroupPlan plan;
  plan.group_size = 4;
  const std::vector<graph::VertexId> a = {1}, b = {2}, c = {3};
  cache.Put(a, plan);
  cache.Put(b, plan);
  ASSERT_TRUE(cache.Get(a).has_value());  // refresh a; b becomes LRU
  cache.Put(c, plan);
  EXPECT_TRUE(cache.Get(a).has_value());
  EXPECT_FALSE(cache.Get(b).has_value());
  EXPECT_TRUE(cache.Get(c).has_value());
  EXPECT_EQ(cache.stats().plan_evictions, 1);
}

TEST(CachePlanTest, ClearDropsPlans) {
  PlanCache cache(1, 8);
  GroupPlan plan;
  plan.group_size = 4;
  const std::vector<graph::VertexId> key = {5};
  cache.Put(key, plan);
  cache.Clear();
  EXPECT_FALSE(cache.Get(key).has_value());
}

// --------------------------------------------------- service integration --

EngineOptions SmallEngineOptions() {
  EngineOptions options;
  options.strategy = Strategy::kBitwise;
  options.grouping = GroupingPolicy::kGroupBy;
  options.group_size = 16;
  return options;
}

ServiceOptions CachedServiceOptions() {
  ServiceOptions options;
  options.max_batch = 16;
  options.max_delay_ms = 2.0;
  options.execute_threads = 2;
  options.engine = SmallEngineOptions();
  return options;
}

// Submits every source once and waits; returns the results in order.
std::vector<QueryResult> SubmitAll(
    BfsService* svc, const std::vector<graph::VertexId>& sources) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(sources.size());
  for (graph::VertexId s : sources) futures.push_back(svc->Submit(s));
  std::vector<QueryResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

TEST(CacheServiceTest, SecondWaveResolvesFromCache) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 12, 7);
  auto svc = BfsService::Create(&graph, CachedServiceOptions());
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  const auto first = SubmitAll(svc.value().get(), sources);
  const auto second = SubmitAll(svc.value().get(), sources);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    ASSERT_TRUE(first[i].status.ok()) << first[i].status.ToString();
    ASSERT_TRUE(second[i].status.ok()) << second[i].status.ToString();
    EXPECT_FALSE(first[i].cached);
    EXPECT_TRUE(second[i].cached);
    EXPECT_EQ(second[i].batch_id, -1);  // never joined a batch
    EXPECT_EQ(first[i].depth_checksum, second[i].depth_checksum);
    EXPECT_EQ(first[i].reached, second[i].reached);
    EXPECT_EQ(first[i].depths, second[i].depths);  // keep_depths default on
  }
  svc.value()->Shutdown();
  EXPECT_EQ(svc.value()->stats().cache_hits,
            static_cast<int64_t>(sources.size()));
  const CacheStats cache = svc.value()->cache_stats();
  EXPECT_EQ(cache.hits, static_cast<int64_t>(sources.size()));
  EXPECT_EQ(cache.insertions, static_cast<int64_t>(sources.size()));
}

TEST(CacheServiceTest, QuarantinedEntryIsReexecutedCorrectly) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 4, 7);
  auto svc = BfsService::Create(&graph, CachedServiceOptions());
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();

  const auto first = SubmitAll(svc.value().get(), sources);
  for (const QueryResult& r : first) ASSERT_TRUE(r.status.ok());
  // Corrupt one cached entry in place: the next lookup must detect the
  // checksum mismatch, quarantine the entry, and re-execute the query.
  ASSERT_TRUE(
      svc.value()->result_cache_for_test()->CorruptEntryForTest(sources[0]));
  const auto again = SubmitAll(svc.value().get(), {sources[0]});
  ASSERT_TRUE(again[0].status.ok()) << again[0].status.ToString();
  EXPECT_FALSE(again[0].cached);  // served by execution, not the cache
  EXPECT_EQ(again[0].depth_checksum, first[0].depth_checksum);
  EXPECT_EQ(again[0].depths, first[0].depths);
  svc.value()->Shutdown();
  EXPECT_EQ(svc.value()->cache_stats().quarantined, 1);
}

TEST(CacheServiceTest, InvalidateClearsBothCaches) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 8, 7);
  auto svc = BfsService::Create(&graph, CachedServiceOptions());
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (const QueryResult& r : SubmitAll(svc.value().get(), sources)) {
    ASSERT_TRUE(r.status.ok());
  }
  EXPECT_GT(svc.value()->cache_stats().entries, 0);
  svc.value()->InvalidateCache();
  EXPECT_EQ(svc.value()->cache_stats().entries, 0);
  EXPECT_EQ(svc.value()->cache_stats().bytes_resident, 0);
  const auto again = SubmitAll(svc.value().get(), {sources[0]});
  ASSERT_TRUE(again[0].status.ok());
  EXPECT_FALSE(again[0].cached);  // cold after invalidation
  svc.value()->Shutdown();
}

TEST(CacheServiceTest, DisabledCacheNeverServesHits) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 6, 7);
  ServiceOptions options = CachedServiceOptions();
  options.cache.enabled = false;
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (int pass = 0; pass < 2; ++pass) {
    for (const QueryResult& r : SubmitAll(svc.value().get(), sources)) {
      ASSERT_TRUE(r.status.ok());
      EXPECT_FALSE(r.cached);
    }
  }
  svc.value()->Shutdown();
  EXPECT_EQ(svc.value()->stats().cache_hits, 0);
  EXPECT_EQ(svc.value()->cache_stats().hits, 0);
}

TEST(CacheServiceTest, FirstBatchInsertsIntoPlanCache) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 16, 7);
  ServiceOptions options = CachedServiceOptions();
  options.max_batch = static_cast<int>(sources.size());
  options.max_delay_ms = 1000.0;  // the size close fires first
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (const QueryResult& r : SubmitAll(svc.value().get(), sources)) {
    ASSERT_TRUE(r.status.ok());
  }
  svc.value()->Shutdown();
  const CacheStats cache = svc.value()->cache_stats();
  EXPECT_GE(cache.plan_insertions, 1);
  EXPECT_GE(cache.plan_misses, 1);
}

TEST(CacheServiceTest, PlanCacheHitOnIdenticalResubmittedBatch) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  const std::vector<graph::VertexId> sources =
      graph::SampleConnectedSources(graph, 16, 7);
  ServiceOptions options = CachedServiceOptions();
  options.max_batch = static_cast<int>(sources.size());
  options.max_delay_ms = 1000.0;
  // Shrink the result cache below one depth vector so every repeat misses
  // the result cache and re-enters the batcher — but the plan cache still
  // remembers the batch's grouping.
  options.cache.result_budget_bytes = 8;
  options.cache.shards = 1;
  auto svc = BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  for (int pass = 0; pass < 2; ++pass) {
    for (const QueryResult& r : SubmitAll(svc.value().get(), sources)) {
      ASSERT_TRUE(r.status.ok());
      EXPECT_FALSE(r.cached);  // results never fit the tiny budget
    }
  }
  svc.value()->Shutdown();
  EXPECT_GE(svc.value()->cache_stats().plan_hits, 1);
}

// ------------------------------------------------------- determinism SLO --

// Drives `events` through a fresh service and returns each query's
// (source, checksum) in submission order, asserting every query succeeds.
std::vector<std::pair<graph::VertexId, uint64_t>> RunStream(
    const graph::Csr& graph, const std::vector<WorkloadEvent>& events,
    bool cache_on, int execute_threads,
    const gpusim::FaultPlan* faults = nullptr) {
  ServiceOptions options = CachedServiceOptions();
  options.execute_threads = execute_threads;
  options.keep_depths = false;
  options.cache.enabled = cache_on;
  if (faults != nullptr) {
    options.engine.faults = *faults;
    options.engine.retry.max_attempts = 8;
    options.engine.retry.initial_backoff_ms = 0.0;
    options.engine.retry.max_backoff_ms = 0.0;
    options.resilience.cpu_fallback = true;
  }
  auto svc = BfsService::Create(&graph, options);
  IBFS_CHECK(svc.ok()) << svc.status().ToString();
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(events.size());
  for (const WorkloadEvent& event : events) {
    futures.push_back(svc.value()->Submit(event.source));
  }
  svc.value()->Shutdown();
  std::vector<std::pair<graph::VertexId, uint64_t>> out;
  out.reserve(futures.size());
  for (auto& f : futures) {
    const QueryResult r = f.get();
    IBFS_CHECK(r.status.ok()) << r.status.ToString();
    out.emplace_back(r.source, r.depth_checksum);
  }
  return out;
}

TEST(CacheDeterminismTest, OnOffBitIdenticalAcrossThreadCounts) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  WorkloadOptions workload;
  workload.arrival = ArrivalProcess::kBursty;
  workload.qps = 2000.0;
  workload.duration_s = 0.05;
  workload.seed = 99;
  workload.burst_size = 8;
  workload.source_pool = 6;  // hot sources: plenty of cache hits
  auto events = GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_GT(events.value().size(), 12u);

  const auto baseline = RunStream(graph, events.value(), false, 1);
  for (bool cache_on : {false, true}) {
    for (int threads : {1, 4}) {
      const auto run = RunStream(graph, events.value(), cache_on, threads);
      // Per-query checksums depend only on (graph, source): the cache and
      // the executor width may change latency, never answers.
      EXPECT_EQ(run, baseline)
          << "cache_on=" << cache_on << " threads=" << threads;
    }
  }
}

TEST(CacheDeterminismTest, OnOffBitIdenticalUnderCorruptingFaults) {
  const graph::Csr graph = MakeRmatGraph(8, 8);
  WorkloadOptions workload;
  workload.arrival = ArrivalProcess::kBursty;
  workload.qps = 1500.0;
  workload.duration_s = 0.04;
  workload.seed = 31;
  workload.burst_size = 8;
  workload.source_pool = 5;
  auto events = GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();

  // Transfers corrupt often; the resilient executor's transfer checksum
  // catches each one before results reach clients or the cache, so the
  // cached run must still agree bit for bit with the uncached one.
  auto faults =
      gpusim::FaultPlan::Parse("seed=7,devices=4,corrupt=0.3");
  ASSERT_TRUE(faults.ok()) << faults.status().ToString();

  const auto uncached =
      RunStream(graph, events.value(), false, 1, &faults.value());
  for (int threads : {1, 4}) {
    const auto cached =
        RunStream(graph, events.value(), true, threads, &faults.value());
    EXPECT_EQ(cached, uncached) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ibfs::service
