#include <tuple>
#include <vector>

#include "baselines/reference_bfs.h"
#include "gpusim/device.h"
#include "graph/components.h"
#include "gtest/gtest.h"
#include "ibfs/runner.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::VertexId;

std::vector<VertexId> FirstSources(int64_t n, int64_t stride = 1) {
  std::vector<VertexId> sources;
  for (int64_t i = 0; i < n; ++i) {
    sources.push_back(static_cast<VertexId>(i * stride));
  }
  return sources;
}

// ---------------------------------------------------------------------------
// Correctness sweep: every strategy x several graphs x group sizes must
// reproduce the reference BFS depths for every instance.
// ---------------------------------------------------------------------------

enum class TestGraph { kSmall, kDisconnected, kRmat, kUniform };

graph::Csr MakeGraph(TestGraph which) {
  switch (which) {
    case TestGraph::kSmall:
      return testing::MakeSmallGraph();
    case TestGraph::kDisconnected:
      return testing::MakeDisconnectedGraph(16);
    case TestGraph::kRmat:
      return testing::MakeRmatGraph(7, 8);
    case TestGraph::kUniform:
      return testing::MakeUniformGraph(128, 4);
  }
  return testing::MakeSmallGraph();
}

class StrategyCorrectnessTest
    : public ::testing::TestWithParam<
          std::tuple<Strategy, TestGraph, int>> {};

TEST_P(StrategyCorrectnessTest, DepthsMatchReference) {
  const auto [strategy, which, group_size] = GetParam();
  const graph::Csr g = MakeGraph(which);
  const int64_t n =
      std::min<int64_t>(group_size, g.vertex_count());
  const auto sources = FirstSources(n);
  gpusim::Device device;
  auto result = RunGroup(strategy, g, sources, {}, &device);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const GroupResult& group = result.value();
  ASSERT_EQ(group.depths.size(), sources.size());
  for (size_t j = 0; j < sources.size(); ++j) {
    EXPECT_TRUE(
        baselines::DepthsMatchReference(g, sources[j], group.depths[j]))
        << StrategyName(strategy) << " instance " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyCorrectnessTest,
    ::testing::Combine(
        ::testing::Values(Strategy::kSequential, Strategy::kNaiveConcurrent,
                          Strategy::kJointTraversal, Strategy::kBitwise),
        ::testing::Values(TestGraph::kSmall, TestGraph::kDisconnected,
                          TestGraph::kRmat, TestGraph::kUniform),
        ::testing::Values(1, 3, 32, 64)),
    [](const auto& info) {
      std::string name = StrategyName(std::get<0>(info.param));
      name += "_g";
      name += std::to_string(static_cast<int>(std::get<1>(info.param)));
      name += "_n";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

// Group sizes around the 64-bit word boundary for the bitwise runner.
class BitwiseWordBoundaryTest : public ::testing::TestWithParam<int> {};

TEST_P(BitwiseWordBoundaryTest, DepthsMatchReference) {
  const int n = GetParam();
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  const auto sources = FirstSources(n);
  gpusim::Device device;
  auto result = RunGroup(Strategy::kBitwise, g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  for (size_t j = 0; j < sources.size(); ++j) {
    EXPECT_TRUE(baselines::DepthsMatchReference(g, sources[j],
                                                result.value().depths[j]));
  }
}

INSTANTIATE_TEST_SUITE_P(WordBoundaries, BitwiseWordBoundaryTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 130));

// ---------------------------------------------------------------------------
// Behavioral checks.
// ---------------------------------------------------------------------------

TEST(StrategiesTest, RunGroupValidatesInputs) {
  const graph::Csr g = testing::MakeSmallGraph();
  gpusim::Device device;
  EXPECT_FALSE(RunGroup(Strategy::kBitwise, g, {}, {}, &device).ok());
  const std::vector<VertexId> bad = {1000};
  EXPECT_FALSE(RunGroup(Strategy::kBitwise, g, bad, {}, &device).ok());
  const std::vector<VertexId> ok_src = {0};
  EXPECT_FALSE(RunGroup(Strategy::kBitwise, g, ok_src, {}, nullptr).ok());
  TraversalOptions bad_opts;
  bad_opts.alpha = -1;
  EXPECT_FALSE(
      RunGroup(Strategy::kBitwise, g, ok_src, bad_opts, &device).ok());
  bad_opts = {};
  bad_opts.max_level = 0;
  EXPECT_FALSE(
      RunGroup(Strategy::kBitwise, g, ok_src, bad_opts, &device).ok());
}

TEST(StrategiesTest, StrategyNames) {
  EXPECT_STREQ(StrategyName(Strategy::kSequential), "sequential");
  EXPECT_STREQ(StrategyName(Strategy::kNaiveConcurrent), "naive");
  EXPECT_STREQ(StrategyName(Strategy::kJointTraversal), "joint");
  EXPECT_STREQ(StrategyName(Strategy::kBitwise), "bitwise");
}

TEST(StrategiesTest, DuplicateSourcesAllowed) {
  const graph::Csr g = testing::MakeSmallGraph();
  const std::vector<VertexId> sources = {2, 2, 2};
  gpusim::Device device;
  for (Strategy s : {Strategy::kJointTraversal, Strategy::kBitwise}) {
    auto result = RunGroup(s, g, sources, {}, &device);
    ASSERT_TRUE(result.ok());
    for (int j = 0; j < 3; ++j) {
      EXPECT_TRUE(
          baselines::DepthsMatchReference(g, 2, result.value().depths[j]));
    }
  }
}

TEST(StrategiesTest, JointSharedFrontiersEnqueuedOnce) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = FirstSources(16);
  gpusim::Device device;
  auto result = RunGroup(Strategy::kJointTraversal, g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  // The joint queue never exceeds |V| per level, while the private sum can.
  for (const LevelTrace& lt : result.value().trace.levels) {
    EXPECT_LE(lt.jfq_size, g.vertex_count());
    EXPECT_GE(lt.private_fq_sum, lt.jfq_size);
  }
  EXPECT_GE(result.value().trace.SharingDegree(), 1.0);
}

TEST(StrategiesTest, SequentialHasNoSharing) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = FirstSources(8);
  gpusim::Device device;
  auto result = RunGroup(Strategy::kSequential, g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().trace.SharingDegree(), 1.0);
}

TEST(StrategiesTest, JointBeatsNaiveOnSimulatedTime) {
  const graph::Csr g = testing::MakeRmatGraph(8, 12);
  const auto sources = FirstSources(32);
  gpusim::Device naive_dev;
  gpusim::Device joint_dev;
  ASSERT_TRUE(
      RunGroup(Strategy::kNaiveConcurrent, g, sources, {}, &naive_dev).ok());
  ASSERT_TRUE(
      RunGroup(Strategy::kJointTraversal, g, sources, {}, &joint_dev).ok());
  EXPECT_LT(joint_dev.elapsed_seconds(), naive_dev.elapsed_seconds());
}

TEST(StrategiesTest, BitwiseBeatsJointOnSimulatedTime) {
  const graph::Csr g = testing::MakeRmatGraph(10, 16);
  const auto sources = graph::SampleConnectedSources(g, 64, 5);
  gpusim::Device joint_dev;
  gpusim::Device bitwise_dev;
  ASSERT_TRUE(
      RunGroup(Strategy::kJointTraversal, g, sources, {}, &joint_dev).ok());
  ASSERT_TRUE(
      RunGroup(Strategy::kBitwise, g, sources, {}, &bitwise_dev).ok());
  EXPECT_LT(bitwise_dev.elapsed_seconds(), joint_dev.elapsed_seconds());
}

TEST(StrategiesTest, EarlyTerminationReducesBottomUpLoads) {
  const graph::Csr g = testing::MakeRmatGraph(8, 16);
  // Sources must come from the giant component: an instance stuck in a
  // tiny component can never fill any status row, which forecloses early
  // termination group-wide (the paper samples Graph500-style sources).
  const auto sources = graph::SampleConnectedSources(g, 64, 5);
  TraversalOptions with_et;
  TraversalOptions without_et;
  without_et.early_termination = false;
  gpusim::Device dev_et;
  gpusim::Device dev_no;
  auto r1 = RunGroup(Strategy::kBitwise, g, sources, with_et, &dev_et);
  auto r2 = RunGroup(Strategy::kBitwise, g, sources, without_et, &dev_no);
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Same results either way...
  for (size_t j = 0; j < sources.size(); ++j) {
    ASSERT_EQ(r1.value().depths[j], r2.value().depths[j]);
  }
  // ...but early termination strictly reduces bottom-up memory traffic.
  EXPECT_LT(dev_et.PhaseStats("bu_inspect").mem.load_transactions,
            dev_no.PhaseStats("bu_inspect").mem.load_transactions);
}

TEST(StrategiesTest, MsBfsResetModeSlowerThanIbfs) {
  const graph::Csr g = testing::MakeRmatGraph(8, 16);
  const auto sources = FirstSources(64);
  TraversalOptions msbfs_style;
  msbfs_style.msbfs_reset = true;
  gpusim::Device dev_ibfs;
  gpusim::Device dev_msbfs;
  auto r1 = RunGroup(Strategy::kBitwise, g, sources, {}, &dev_ibfs);
  auto r2 = RunGroup(Strategy::kBitwise, g, sources, msbfs_style, &dev_msbfs);
  ASSERT_TRUE(r1.ok() && r2.ok());
  for (size_t j = 0; j < sources.size(); ++j) {
    ASSERT_EQ(r1.value().depths[j], r2.value().depths[j]);
  }
  EXPECT_LT(dev_ibfs.elapsed_seconds(), dev_msbfs.elapsed_seconds());
}

TEST(StrategiesTest, AdjacencyCacheReducesLoads) {
  const graph::Csr g = testing::MakeRmatGraph(8, 12);
  const auto sources = FirstSources(32);
  TraversalOptions no_cache;
  no_cache.adjacency_cache = false;
  gpusim::Device dev_cache;
  gpusim::Device dev_nocache;
  ASSERT_TRUE(
      RunGroup(Strategy::kJointTraversal, g, sources, {}, &dev_cache).ok());
  ASSERT_TRUE(RunGroup(Strategy::kJointTraversal, g, sources, no_cache,
                       &dev_nocache)
                  .ok());
  EXPECT_LT(dev_cache.totals().mem.load_transactions,
            dev_nocache.totals().mem.load_transactions);
}

TEST(StrategiesTest, MaxLevelTruncatesAllStrategies) {
  const graph::Csr g = testing::MakeDisconnectedGraph(16);  // a chain
  TraversalOptions options;
  options.max_level = 2;
  const std::vector<VertexId> sources = {0, 1};
  for (Strategy s :
       {Strategy::kSequential, Strategy::kNaiveConcurrent,
        Strategy::kJointTraversal, Strategy::kBitwise}) {
    gpusim::Device device;
    auto result = RunGroup(s, g, sources, options, &device);
    ASSERT_TRUE(result.ok());
    for (size_t j = 0; j < sources.size(); ++j) {
      EXPECT_TRUE(baselines::DepthsMatchReference(
          g, sources[j], result.value().depths[j], 2))
          << StrategyName(s);
    }
  }
}

TEST(StrategiesTest, TraceLevelsCoverTraversal) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  const auto sources = FirstSources(16);
  gpusim::Device device;
  auto result = RunGroup(Strategy::kJointTraversal, g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  const GroupTrace& trace = result.value().trace;
  ASSERT_GE(trace.levels.size(), 2u);
  EXPECT_EQ(trace.instance_count, 16);
  // Total new visits across levels + sources equals total visited pairs.
  int64_t visits = 0;
  for (const auto& lt : trace.levels) visits += lt.new_visits;
  int64_t reachable_pairs = 0;
  for (const auto& d : result.value().depths) {
    for (uint8_t x : d) reachable_pairs += x != 0xFF;
  }
  EXPECT_EQ(visits + 16, reachable_pairs);
}

TEST(StrategiesTest, BottomUpInspectionStatsCollected) {
  const graph::Csr g = testing::MakeRmatGraph(8, 16);
  const auto sources = FirstSources(16);
  gpusim::Device device;
  auto result = RunGroup(Strategy::kJointTraversal, g, sources, {}, &device);
  ASSERT_TRUE(result.ok());
  const auto& per_instance =
      result.value().trace.bottom_up_inspections_per_instance;
  ASSERT_EQ(per_instance.size(), sources.size());
  int64_t total = 0;
  for (int64_t c : per_instance) total += c;
  EXPECT_GT(total, 0);
}

}  // namespace
}  // namespace ibfs
