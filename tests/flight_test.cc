// Tests of the flight recorder (obs/flight.h) and the live-telemetry
// plumbing through the service: bounded ring semantics, schema-validated
// dumps, trigger rate limiting, the tracer's per-thread event cap, and an
// end-to-end serve run checking that access-log query ids line up with
// the "ctx" trace-context args on the spans that executed them. Every
// suite name starts with "Flight" so the tsan preset's filter includes
// this file (the e2e test drives the real multi-threaded service).
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/live.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "service/service.h"
#include "service/workload.h"
#include "test_util.h"

namespace ibfs::obs {
namespace {

AccessRecord MakeRecord(double ts_s, int64_t query_id) {
  AccessRecord record;
  record.ts_s = ts_s;
  record.query_id = query_id;
  record.source = query_id * 10;
  record.total_ms = 1.0;
  return record;
}

// -------------------------------------------------------------- rings --

TEST(FlightRecorderTest, QueryRingEvictsOldest) {
  FlightRecorder::Options options;
  options.max_queries = 4;
  FlightRecorder recorder(options);
  for (int i = 0; i < 10; ++i) {
    recorder.RecordQuery(MakeRecord(static_cast<double>(i), i));
  }
  EXPECT_EQ(recorder.query_count(), 4u);
  std::ostringstream os;
  recorder.WriteJson(os, "test", 10.0);
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* queries = doc.value().Find("queries");
  ASSERT_NE(queries, nullptr);
  ASSERT_EQ(queries->array().size(), 4u);
  // The survivors are the four most recent queries, oldest first.
  EXPECT_EQ(queries->array()
                .front()
                .Find("query_id")
                ->number_value(),
            6.0);
  EXPECT_EQ(queries->array().back().Find("query_id")->number_value(), 9.0);
}

TEST(FlightRecorderTest, EventRingEvictsOldest) {
  FlightRecorder::Options options;
  options.max_events = 2;
  FlightRecorder recorder(options);
  recorder.RecordEvent(1.0, "first", "a");
  recorder.RecordEvent(2.0, "second", "b");
  recorder.RecordEvent(3.0, "third", "c");
  EXPECT_EQ(recorder.event_count(), 2u);
  std::ostringstream os;
  recorder.WriteJson(os, "test", 3.0);
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok());
  const JsonValue* events = doc.value().Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array().size(), 2u);
  EXPECT_EQ(events->array().front().Find("name")->string_value(), "second");
}

// ------------------------------------------------------- dump + schema --

TEST(FlightRecorderTest, WriteJsonPassesValidator) {
  FlightRecorder recorder(FlightRecorder::Options{});
  recorder.RecordQuery(MakeRecord(1.0, 7));
  recorder.RecordEvent(1.5, "breaker_opened", "device 2");
  std::ostringstream os;
  recorder.WriteJson(os, "slo_alert", 2.0);
  auto doc = ParseJson(os.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const Status valid = ValidateFlightRecord(doc.value());
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  EXPECT_EQ(doc.value().Find("trigger")->string_value(), "slo_alert");
}

TEST(FlightRecorderTest, TriggerWritesValidatedFileAndRateLimits) {
  FlightRecorder::Options options;
  options.dump_path = ::testing::TempDir() + "/flight_trigger_test.json";
  options.min_dump_interval_s = 5.0;
  std::remove(options.dump_path.c_str());
  FlightRecorder recorder(options);
  recorder.RecordQuery(MakeRecord(0.5, 1));

  Status error;
  EXPECT_TRUE(recorder.Trigger("slo_alert", 1.0, &error)) << error.ToString();
  EXPECT_EQ(recorder.dumps(), 1);
  // Within the rate-limit interval further triggers are suppressed.
  EXPECT_FALSE(recorder.Trigger("breaker_open", 2.0));
  EXPECT_EQ(recorder.dumps(), 1);
  // After the interval the next trigger dumps again.
  EXPECT_TRUE(recorder.Trigger("breaker_open", 7.0));
  EXPECT_EQ(recorder.dumps(), 2);

  const Status valid = ValidateFlightRecordFile(options.dump_path);
  EXPECT_TRUE(valid.ok()) << valid.ToString();
  std::remove(options.dump_path.c_str());
}

TEST(FlightRecorderTest, EmptyDumpPathRecordsButNeverWrites) {
  FlightRecorder recorder(FlightRecorder::Options{});
  recorder.RecordQuery(MakeRecord(0.5, 1));
  EXPECT_FALSE(recorder.Trigger("slo_alert", 1.0));
  EXPECT_EQ(recorder.dumps(), 0);
  EXPECT_EQ(recorder.query_count(), 1u);
}

TEST(FlightRecorderTest, ValidatorRejectsWrongSchema) {
  auto doc = ParseJson("{\"schema\":\"ibfs.metrics\",\"schema_version\":1}");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(ValidateFlightRecord(doc.value()).ok());
}

// ----------------------------------------------------- tracer ring cap --

TEST(FlightTracerCap, RingKeepsMostRecentEventsAndCountsDrops) {
  Tracer tracer;
  tracer.SetMaxEventsPerThread(8);
  MetricsRegistry metrics;
  tracer.SetDropCounter(metrics.GetCounter("trace.dropped_events"));
  for (int i = 0; i < 20; ++i) {
    tracer.Instant({0, 0}, "e" + std::to_string(i),
                   static_cast<double>(i));
  }
  EXPECT_EQ(tracer.event_count(), 8u);
  EXPECT_EQ(tracer.dropped_events(), 12);
  EXPECT_EQ(metrics.GetCounter("trace.dropped_events")->value(), 12);
  // The ring holds the newest events; the earliest were overwritten.
  std::ostringstream os;
  tracer.WriteJson(os);
  EXPECT_EQ(os.str().find("\"e0\""), std::string::npos);
  EXPECT_NE(os.str().find("\"e19\""), std::string::npos);
}

TEST(FlightTracerCap, UncappedBufferDropsNothing) {
  Tracer tracer;
  for (int i = 0; i < 100; ++i) {
    tracer.Instant({0, 0}, "e", static_cast<double>(i));
  }
  EXPECT_EQ(tracer.event_count(), 100u);
  EXPECT_EQ(tracer.dropped_events(), 0);
}

// -------------------------------------------------------- end to end --

// Drives the real service with every live sink attached and checks the
// joins between them: access-log ids appear in span trace-context, the
// SLO alert fires under an impossible objective, and the triggered
// flight dump passes the schema validator.
TEST(FlightServiceE2E, AccessLogIdsMatchSpanContexts) {
  const graph::Csr graph = ibfs::testing::MakeRmatGraph(8, 8, 42);

  std::ostringstream access_os;
  AccessLog access_log(&access_os);
  SloSpec slo_spec;
  slo_spec.objective_ms = 0.001;  // everything is bad: the alert must fire
  slo_spec.target = 0.99;
  SloTracker slo(slo_spec);
  FlightRecorder::Options flight_options;
  flight_options.dump_path =
      ::testing::TempDir() + "/flight_e2e_dump_test.json";
  std::remove(flight_options.dump_path.c_str());
  FlightRecorder flight(flight_options);
  Tracer tracer;
  MetricsRegistry metrics;

  service::ServiceOptions options;
  options.max_batch = 16;
  options.max_delay_ms = 2.0;
  options.execute_threads = 2;
  options.engine.strategy = Strategy::kBitwise;
  options.engine.grouping = GroupingPolicy::kGroupBy;
  options.engine.group_size = 16;
  options.observer.tracer = &tracer;
  options.observer.metrics = &metrics;
  options.access_log = &access_log;
  options.slo = &slo;
  options.flight = &flight;

  service::WorkloadOptions workload;
  workload.arrival = service::ArrivalProcess::kPoisson;
  workload.qps = 500.0;
  workload.duration_s = 0.2;
  workload.seed = 9;
  auto events = service::GenerateArrivals(graph, workload);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_GE(events.value().size(), 10u);

  auto svc = service::BfsService::Create(&graph, options);
  ASSERT_TRUE(svc.ok()) << svc.status().ToString();
  auto drive = service::DriveWorkload(svc.value().get(), events.value());
  ASSERT_TRUE(drive.ok()) << drive.status().ToString();
  svc.value()->PublishLiveTelemetry();
  svc.value()->Shutdown();

  // Every query produced an access-log line.
  EXPECT_EQ(access_log.lines(),
            static_cast<int64_t>(events.value().size()));

  // The impossible objective fired the burn-rate alert and the alert
  // triggered a schema-valid flight dump.
  EXPECT_GE(slo.alerts_fired(), 1);
  EXPECT_EQ(metrics.GetGauge("slo.alert_active")->value(), 1.0);
  EXPECT_GE(flight.dumps(), 1);
  const Status flight_valid =
      ValidateFlightRecordFile(flight_options.dump_path);
  EXPECT_TRUE(flight_valid.ok()) << flight_valid.ToString();

  // Collect every query id named by a span "ctx" arg ("q3,q7,...").
  std::ostringstream trace_os;
  tracer.WriteJson(trace_os);
  auto trace_doc = ParseJson(trace_os.str());
  ASSERT_TRUE(trace_doc.ok()) << trace_doc.status().ToString();
  std::set<int64_t> ctx_ids;
  const JsonValue* trace_events = trace_doc.value().Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  for (const JsonValue& event : trace_events->array()) {
    const JsonValue* args = event.Find("args");
    if (args == nullptr) continue;
    const JsonValue* ctx = args->Find("ctx");
    if (ctx == nullptr || !ctx->is_string()) continue;
    std::istringstream parts(ctx->string_value());
    std::string part;
    while (std::getline(parts, part, ',')) {
      ASSERT_GT(part.size(), 1u);
      ASSERT_EQ(part[0], 'q');
      ctx_ids.insert(std::stoll(part.substr(1)));
    }
  }
  EXPECT_FALSE(ctx_ids.empty());

  // Every dispatched query (joined a batch, reached a device) must be
  // claimed by at least one span's trace-context. Cached admissions never
  // reach the executor, so they carry no span.
  std::istringstream lines(access_os.str());
  std::string line;
  int dispatched = 0;
  while (std::getline(lines, line)) {
    auto doc = ParseJson(line);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString() << ": " << line;
    const int64_t query_id =
        static_cast<int64_t>(doc.value().Find("query_id")->number_value());
    const int64_t batch_id =
        static_cast<int64_t>(doc.value().Find("batch_id")->number_value());
    const int64_t attempts =
        static_cast<int64_t>(doc.value().Find("attempts")->number_value());
    const bool cached = doc.value().Find("cached")->bool_value();
    if (cached || batch_id < 0 || attempts < 1) continue;
    EXPECT_TRUE(ctx_ids.count(query_id) == 1)
        << "query " << query_id << " has no span with its ctx";
    ++dispatched;
  }
  EXPECT_GT(dispatched, 0);
  std::remove(flight_options.dump_path.c_str());
}

}  // namespace
}  // namespace ibfs::obs
