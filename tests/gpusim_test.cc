#include <vector>

#include "gpusim/cluster.h"
#include "gpusim/device.h"
#include "gpusim/device_spec.h"
#include "gpusim/memory_model.h"
#include "gpusim/warp.h"
#include "gtest/gtest.h"

namespace ibfs::gpusim {
namespace {

TEST(MemoryModelTest, ContiguousWithinOneSegment) {
  // 32 x 4-byte elements starting at 0 span exactly one 128B segment.
  EXPECT_EQ(ContiguousTransactions(0, 32, 4, 128), 1);
  EXPECT_EQ(ContiguousTransactions(0, 33, 4, 128), 2);
}

TEST(MemoryModelTest, ContiguousUnalignedStart) {
  // Crossing a segment boundary costs a second transaction.
  EXPECT_EQ(ContiguousTransactions(31, 2, 4, 128), 2);
  EXPECT_EQ(ContiguousTransactions(30, 2, 4, 128), 1);
}

TEST(MemoryModelTest, ContiguousZeroOrNegativeCount) {
  EXPECT_EQ(ContiguousTransactions(0, 0, 4, 128), 0);
  EXPECT_EQ(ContiguousTransactions(5, -3, 4, 128), 0);
}

TEST(MemoryModelTest, ContiguousByteElements) {
  // Coalescing is per 32-lane warp request: 128 one-byte lanes are four
  // warps, four transactions — the JSA-vs-BSA asymmetry of Section 6.
  EXPECT_EQ(ContiguousTransactions(0, 128, 1, 128), 4);
  EXPECT_EQ(ContiguousTransactions(0, 129, 1, 128), 5);
  EXPECT_EQ(ContiguousTransactions(127, 2, 1, 128), 2);
  // One thread reading the same 128 statuses as two packed words: 1 txn.
  EXPECT_EQ(ContiguousTransactions(0, 2, 8, 128), 1);
}

TEST(MemoryModelTest, WarpChunkingNeverMergesAcrossWarps) {
  // 64 x 4-byte lanes: two warps, two 128B segments, two transactions.
  EXPECT_EQ(ContiguousTransactions(0, 64, 4, 128), 2);
  // Unaligned: each warp straddles a boundary.
  EXPECT_EQ(ContiguousTransactions(16, 64, 4, 128), 4);
}

TEST(MemoryModelTest, GatherAllSameSegment) {
  std::vector<int64_t> idx(32, 5);
  EXPECT_EQ(GatherTransactions(idx, 4, 128), 1);
}

TEST(MemoryModelTest, GatherFullyScattered) {
  std::vector<int64_t> idx;
  for (int i = 0; i < 32; ++i) idx.push_back(i * 1000);
  EXPECT_EQ(GatherTransactions(idx, 4, 128), 32);
}

TEST(MemoryModelTest, GatherMasksInactiveLanes) {
  std::vector<int64_t> idx(32, kInactiveLane);
  EXPECT_EQ(GatherTransactions(idx, 4, 128), 0);
  idx[3] = 7;
  EXPECT_EQ(GatherTransactions(idx, 4, 128), 1);
}

TEST(MemoryModelTest, CountersAddAndDerive) {
  MemCounters a;
  a.load_transactions = 10;
  a.load_requests = 2;
  a.store_transactions = 4;
  a.atomic_ops = 1;
  MemCounters b;
  b.load_transactions = 5;
  b.load_requests = 3;
  b.Add(a);
  EXPECT_EQ(b.load_transactions, 15u);
  EXPECT_EQ(b.load_requests, 5u);
  EXPECT_EQ(b.DramBytes(128), (15 + 4 + 1) * 128);
  EXPECT_DOUBLE_EQ(b.LoadTransactionsPerRequest(), 3.0);
}

TEST(WarpTest, BallotSetsLaneBits) {
  const bool preds[] = {true, false, true, true};
  EXPECT_EQ(Ballot({preds, 4}), 0b1101u);
}

TEST(WarpTest, AnyAndAll) {
  const bool none[] = {false, false};
  const bool some[] = {false, true};
  const bool all[] = {true, true};
  EXPECT_FALSE(Any({none, 2}));
  EXPECT_TRUE(Any({some, 2}));
  EXPECT_FALSE(All({some, 2}));
  EXPECT_TRUE(All({all, 2}));
}

TEST(WarpTest, LeaderLane) {
  EXPECT_EQ(LeaderLane(0), -1);
  EXPECT_EQ(LeaderLane(0b1000), 3);
  EXPECT_EQ(LeaderLane(0b1001), 0);
}

TEST(DeviceSpecTest, PresetsAreDistinct) {
  const DeviceSpec k40 = DeviceSpec::K40();
  const DeviceSpec k20 = DeviceSpec::K20();
  EXPECT_EQ(k40.sm_count, 15);
  EXPECT_EQ(k20.sm_count, 13);
  EXPECT_GT(k40.mem_bandwidth_gbps, k20.mem_bandwidth_gbps);
}

TEST(DeviceTest, KernelAccumulatesCountersAndTime) {
  Device device;
  {
    auto scope = device.BeginKernel("phase_a");
    scope.LoadContiguous(0, 1024, 4);
    scope.StoreContiguous(0, 256, 4);
    scope.Compute(1000);
    scope.Atomic(3);
  }
  EXPECT_GT(device.elapsed_seconds(), 0.0);
  const KernelStats totals = device.totals();
  EXPECT_EQ(totals.mem.load_transactions, 32u);
  EXPECT_EQ(totals.mem.store_transactions, 8u);
  EXPECT_EQ(totals.mem.atomic_ops, 3u);
  EXPECT_EQ(totals.launch_count, 1);
}

TEST(DeviceTest, PhasesTrackedSeparately) {
  Device device;
  {
    auto scope = device.BeginKernel("a");
    scope.LoadContiguous(0, 32, 4);
  }
  {
    auto scope = device.BeginKernel("b");
    scope.StoreContiguous(0, 32, 4);
  }
  EXPECT_EQ(device.PhaseStats("a").mem.load_transactions, 1u);
  EXPECT_EQ(device.PhaseStats("a").mem.store_transactions, 0u);
  EXPECT_EQ(device.PhaseStats("b").mem.store_transactions, 1u);
  EXPECT_EQ(device.PhaseStats("missing").mem.load_transactions, 0u);
}

TEST(DeviceTest, LaunchOverheadChargedPerLaunch) {
  Device device;
  { auto scope = device.BeginKernel("k"); }
  const double one = device.elapsed_seconds();
  EXPECT_NEAR(one, device.spec().kernel_launch_overhead_s, 1e-12);
  {
    auto scope = device.BeginKernel("k");
    scope.ExtraLaunches(9);
  }
  EXPECT_NEAR(device.elapsed_seconds(), 11 * one, 1e-12);
}

TEST(DeviceTest, SlowestItemBoundsKernelTime) {
  Device fast;
  Device slow;
  // Same total work; one device has it concentrated in a single item.
  {
    auto scope = fast.BeginKernel("k");
    for (int i = 0; i < 1000; ++i) {
      scope.BeginItem();
      scope.Compute(3200);
      scope.EndItem();
    }
  }
  {
    auto scope = slow.BeginKernel("k");
    scope.BeginItem();
    scope.Compute(3200 * 1000);
    scope.EndItem();
  }
  EXPECT_GT(slow.elapsed_seconds(), fast.elapsed_seconds() * 10);
}

TEST(DeviceTest, BandwidthBoundsMemoryHeavyKernels) {
  DeviceSpec spec;
  spec.mem_bandwidth_gbps = 1.0;  // deliberately tiny
  Device device(spec);
  {
    auto scope = device.BeginKernel("k");
    scope.LoadContiguous(0, 1 << 20, 4);
  }
  const double bytes = static_cast<double>(
      device.totals().mem.DramBytes(device.spec().dram_sector_bytes));
  EXPECT_GE(device.elapsed_seconds(), bytes / 1e9);
}

TEST(DeviceTest, ResetClearsEverything) {
  Device device;
  {
    auto scope = device.BeginKernel("k");
    scope.Compute(100);
  }
  device.ResetStats();
  EXPECT_EQ(device.elapsed_seconds(), 0.0);
  EXPECT_EQ(device.totals().mem.load_transactions, 0u);
  EXPECT_TRUE(device.phases().empty());
}


TEST(DeviceTest, SharedFootprintCostsOccupancy) {
  // Same work; one kernel declares a per-CTA shared footprint so large
  // that occupancy (and thus effective parallelism) collapses.
  Device small;
  Device big;
  {
    auto scope = small.BeginKernel("k");
    scope.SetCtaSharedBytes(1024);
    for (int i = 0; i < 512; ++i) {
      scope.BeginItem();
      scope.Compute(6400);
      scope.EndItem();
    }
  }
  {
    auto scope = big.BeginKernel("k");
    scope.SetCtaSharedBytes(48 * 1024);  // one CTA per SM -> low occupancy
    for (int i = 0; i < 512; ++i) {
      scope.BeginItem();
      scope.Compute(6400);
      scope.EndItem();
    }
  }
  EXPECT_GT(big.elapsed_seconds(), small.elapsed_seconds() * 2);
}

TEST(DeviceTest, ModestSharedFootprintIsFree) {
  // Below the saturation point the footprint must not slow anything.
  Device none;
  Device tile;
  auto run = [](Device* d, int64_t cta_bytes) {
    auto scope = d->BeginKernel("k");
    if (cta_bytes > 0) scope.SetCtaSharedBytes(cta_bytes);
    scope.Compute(640000);
  };
  run(&none, 0);
  run(&tile, 8 * 1024);
  EXPECT_DOUBLE_EQ(none.elapsed_seconds(), tile.elapsed_seconds());
}

TEST(DeviceTest, MoreWorkTakesMoreTime) {
  // Cost-model monotonicity: strictly more of any charged quantity never
  // makes a kernel faster.
  auto time_for = [](int64_t loads, int64_t ops, int64_t atomics) {
    Device device;
    auto scope = device.BeginKernel("k");
    scope.LoadContiguous(0, loads, 4);
    scope.Compute(ops);
    scope.Atomic(atomics);
    scope.End();
    return device.elapsed_seconds();
  };
  EXPECT_LE(time_for(1000, 1000, 10), time_for(2000, 1000, 10));
  EXPECT_LE(time_for(1000, 1000, 10), time_for(1000, 50000, 10));
  EXPECT_LE(time_for(1000, 1000, 10), time_for(1000, 1000, 1000));
}

TEST(ClusterTest, RoundRobinAndLptPlacement) {
  const std::vector<double> costs = {4, 3, 2, 1};
  Cluster cluster(2);
  const ClusterRun rr = cluster.Place(costs, PlacementPolicy::kRoundRobin);
  EXPECT_DOUBLE_EQ(rr.device_seconds[0], 6.0);  // 4 + 2
  EXPECT_DOUBLE_EQ(rr.device_seconds[1], 4.0);  // 3 + 1
  EXPECT_DOUBLE_EQ(rr.makespan_seconds, 6.0);
  EXPECT_DOUBLE_EQ(rr.total_seconds, 10.0);

  const ClusterRun lpt = cluster.Place(costs, PlacementPolicy::kLpt);
  EXPECT_DOUBLE_EQ(lpt.makespan_seconds, 5.0);  // {4,1} and {3,2}
}

TEST(ClusterTest, SpeedupNeverExceedsDeviceCount) {
  std::vector<double> costs(128, 1.0);
  for (int g : {1, 2, 7, 16, 100}) {
    const double s = ClusterSpeedup(costs, g, PlacementPolicy::kRoundRobin);
    EXPECT_LE(s, static_cast<double>(g) + 1e-9);
    EXPECT_GT(s, 0.0);
  }
}

TEST(ClusterTest, UniformWorkScalesLinearly) {
  std::vector<double> costs(128, 1.0);
  EXPECT_DOUBLE_EQ(ClusterSpeedup(costs, 4, PlacementPolicy::kRoundRobin),
                   4.0);
}

TEST(ClusterTest, ImbalanceCapsSpeedup) {
  // One huge unit dominates: no amount of devices helps beyond total/max.
  std::vector<double> costs(31, 1.0);
  costs.push_back(31.0);
  const double s = ClusterSpeedup(costs, 16, PlacementPolicy::kLpt);
  EXPECT_LE(s, 2.0 + 1e-9);
}

}  // namespace
}  // namespace ibfs::gpusim
