#include <numeric>
#include <vector>

#include "apps/betweenness_device.h"
#include "apps/centrality.h"
#include "apps/eccentricity.h"
#include "graph/components.h"
#include "graph/builder.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs::apps {
namespace {

using graph::VertexId;

std::vector<VertexId> AllVertices(const graph::Csr& g) {
  std::vector<VertexId> v(static_cast<size_t>(g.vertex_count()));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(DeviceBetweennessTest, MatchesHostBrandesOnSmallGraph) {
  const graph::Csr g = testing::MakeSmallGraph();
  const auto pivots = AllVertices(g);
  auto device = DeviceBetweenness(g, pivots, /*group_size=*/4);
  ASSERT_TRUE(device.ok()) << device.status().ToString();
  const auto host = BetweennessCentrality(g, pivots);
  ASSERT_EQ(device.value().centrality.size(), host.size());
  for (size_t v = 0; v < host.size(); ++v) {
    EXPECT_NEAR(device.value().centrality[v], host[v], 1e-9)
        << "vertex " << v;
  }
  EXPECT_GT(device.value().sim_seconds, 0.0);
}

TEST(DeviceBetweennessTest, MatchesHostBrandesOnRmat) {
  const graph::Csr g = testing::MakeRmatGraph(6, 6);
  const auto pivots = AllVertices(g);
  for (int group_size : {1, 7, 64}) {
    auto device = DeviceBetweenness(g, pivots, group_size);
    ASSERT_TRUE(device.ok());
    const auto host = BetweennessCentrality(g, pivots);
    for (size_t v = 0; v < host.size(); ++v) {
      ASSERT_NEAR(device.value().centrality[v], host[v],
                  1e-6 * (1.0 + host[v]))
          << "vertex " << v << " group_size " << group_size;
    }
  }
}

TEST(DeviceBetweennessTest, StarCenterTakesAllPaths) {
  graph::GraphBuilder builder(6);
  for (int leaf = 1; leaf < 6; ++leaf) {
    builder.AddUndirectedEdge(0, static_cast<VertexId>(leaf));
  }
  auto g = std::move(builder).Build();
  ASSERT_TRUE(g.ok());
  auto result = DeviceBetweenness(g.value(), AllVertices(g.value()), 6);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().centrality[0], 5.0 * 4.0, 1e-9);
  for (int leaf = 1; leaf < 6; ++leaf) {
    EXPECT_NEAR(result.value().centrality[leaf], 0.0, 1e-12);
  }
}

TEST(DeviceBetweennessTest, GroupingInvariant) {
  // Betweenness must not depend on how pivots are grouped.
  const graph::Csr g = testing::MakeRmatGraph(6, 8, 5);
  const auto pivots = AllVertices(g);
  auto a = DeviceBetweenness(g, pivots, 16);
  auto b = DeviceBetweenness(g, pivots, 64);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t v = 0; v < a.value().centrality.size(); ++v) {
    ASSERT_NEAR(a.value().centrality[v], b.value().centrality[v], 1e-6);
  }
}

TEST(DeviceBetweennessTest, RejectsBadInput) {
  const graph::Csr g = testing::MakeSmallGraph();
  EXPECT_FALSE(DeviceBetweenness(g, {}, 4).ok());
  const std::vector<VertexId> bad = {100};
  EXPECT_FALSE(DeviceBetweenness(g, bad, 4).ok());
  const std::vector<VertexId> ok_pivots = {0};
  EXPECT_FALSE(DeviceBetweenness(g, ok_pivots, 0).ok());
}

TEST(DoubleSweepTest, ExactOnChain) {
  const graph::Csr g = testing::MakeDisconnectedGraph(12);  // chain 0..9
  auto diameter = EstimateDiameterDoubleSweep(g, 3, 1);
  ASSERT_TRUE(diameter.ok());
  EXPECT_EQ(diameter.value(), 9);
}

TEST(DoubleSweepTest, LowerBoundsTrueDiameter) {
  const graph::Csr g = testing::MakeRmatGraph(7, 6);
  auto estimate = EstimateDiameterDoubleSweep(g, 4, 2);
  ASSERT_TRUE(estimate.ok());
  // Exact diameter of the giant component via full eccentricities.
  const auto members = graph::GiantComponent(g);
  auto full = ComputeEccentricities(g, members);
  ASSERT_TRUE(full.ok());
  EXPECT_LE(estimate.value(), full.value().diameter_lower_bound);
  // Double sweep is usually tight on small-world graphs; at minimum it
  // must reach half the true value.
  EXPECT_GE(2 * estimate.value(), full.value().diameter_lower_bound);
}

TEST(DoubleSweepTest, RejectsBadRounds) {
  const graph::Csr g = testing::MakeSmallGraph();
  EXPECT_FALSE(EstimateDiameterDoubleSweep(g, 0).ok());
}

}  // namespace
}  // namespace ibfs::apps
