// Exhaustive engine sweep: every strategy x grouping x group size on two
// graph shapes, checked with the oracle-free validator plus determinism
// (same options + seed => identical simulated time and depths).
#include <numeric>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/validate.h"
#include "graph/components.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace ibfs {
namespace {

using graph::VertexId;

class EngineSweepTest
    : public ::testing::TestWithParam<
          std::tuple<Strategy, GroupingPolicy, int, bool>> {};

TEST_P(EngineSweepTest, ValidatesAndIsDeterministic) {
  const auto [strategy, grouping, group_size, uniform] = GetParam();
  const graph::Csr g = uniform ? testing::MakeUniformGraph(256, 5)
                               : testing::MakeRmatGraph(8, 8);
  const auto sources = graph::SampleConnectedSources(g, 48, 3);

  EngineOptions options;
  options.strategy = strategy;
  options.grouping = grouping;
  options.group_size = group_size;
  options.groupby.group_size = group_size;
  options.seed = 17;
  Engine engine(&g, options);

  auto first = engine.Run(sources);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = engine.Run(sources);
  ASSERT_TRUE(second.ok());

  // Determinism: identical grouping, depths, counters and time.
  EXPECT_DOUBLE_EQ(first.value().sim_seconds, second.value().sim_seconds);
  ASSERT_EQ(first.value().groups.size(), second.value().groups.size());
  EXPECT_EQ(first.value().totals.mem.load_transactions,
            second.value().totals.mem.load_transactions);

  // Structural validity of every instance's result.
  for (size_t grp = 0; grp < first.value().groups.size(); ++grp) {
    ASSERT_EQ(first.value().group_sources[grp],
              second.value().group_sources[grp]);
    for (size_t j = 0; j < first.value().group_sources[grp].size(); ++j) {
      const VertexId s = first.value().group_sources[grp][j];
      const auto& depths = first.value().groups[grp].depths[j];
      EXPECT_TRUE(ValidateBfsDepths(g, s, depths).ok())
          << StrategyName(strategy) << "/" << GroupingPolicyName(grouping)
          << " N=" << group_size;
      ASSERT_EQ(depths, second.value().groups[grp].depths[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweepTest,
    ::testing::Combine(
        ::testing::Values(Strategy::kSequential, Strategy::kNaiveConcurrent,
                          Strategy::kJointTraversal, Strategy::kBitwise),
        ::testing::Values(GroupingPolicy::kInOrder, GroupingPolicy::kRandom,
                          GroupingPolicy::kGroupBy),
        ::testing::Values(1, 17, 64),
        ::testing::Bool()),
    [](const auto& info) {
      std::string name = StrategyName(std::get<0>(info.param));
      name += "_";
      const char* g = GroupingPolicyName(std::get<1>(info.param));
      for (const char* p = g; *p; ++p) {
        if (*p != '-') name += *p;
      }
      name += "_n";
      name += std::to_string(std::get<2>(info.param));
      name += std::get<3>(info.param) ? "_uniform" : "_rmat";
      return name;
    });

}  // namespace
}  // namespace ibfs
