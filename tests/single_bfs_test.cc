#include "baselines/reference_bfs.h"
#include "gpusim/device.h"
#include "gtest/gtest.h"
#include "ibfs/single_bfs.h"
#include "test_util.h"

namespace ibfs {
namespace {

// Drives one SingleBfs to completion and returns its depths.
std::vector<uint8_t> RunToEnd(const graph::Csr& graph, graph::VertexId source,
                              const TraversalOptions& options,
                              gpusim::Device* device) {
  SingleBfs bfs(graph, source, options);
  while (!bfs.finished()) {
    {
      auto scope = device->BeginKernel("inspect");
      bfs.RunLevel(&scope);
    }
    {
      auto scope = device->BeginKernel("fq_gen");
      bfs.GenerateNextFrontier(&scope);
    }
  }
  return bfs.TakeDepths();
}

TEST(SingleBfsTest, MatchesReferenceOnSmallGraph) {
  const graph::Csr g = testing::MakeSmallGraph();
  gpusim::Device device;
  for (int64_t s = 0; s < g.vertex_count(); ++s) {
    const auto depths =
        RunToEnd(g, static_cast<graph::VertexId>(s), {}, &device);
    EXPECT_TRUE(baselines::DepthsMatchReference(
        g, static_cast<graph::VertexId>(s), depths))
        << "source " << s;
  }
}

TEST(SingleBfsTest, MatchesReferenceOnRmat) {
  const graph::Csr g = testing::MakeRmatGraph(8, 8);
  gpusim::Device device;
  for (graph::VertexId s : {0u, 17u, 99u, 255u}) {
    const auto depths = RunToEnd(g, s, {}, &device);
    EXPECT_TRUE(baselines::DepthsMatchReference(g, s, depths))
        << "source " << s;
  }
}

TEST(SingleBfsTest, MatchesReferenceOnUniform) {
  const graph::Csr g = testing::MakeUniformGraph(256, 4);
  gpusim::Device device;
  for (graph::VertexId s : {0u, 100u, 200u}) {
    const auto depths = RunToEnd(g, s, {}, &device);
    EXPECT_TRUE(baselines::DepthsMatchReference(g, s, depths));
  }
}

TEST(SingleBfsTest, UnreachableStayUnvisited) {
  const graph::Csr g = testing::MakeDisconnectedGraph(12);
  gpusim::Device device;
  const auto depths = RunToEnd(g, 0, {}, &device);
  EXPECT_EQ(depths[10], kUnvisitedDepth);
  EXPECT_EQ(depths[11], kUnvisitedDepth);
  EXPECT_TRUE(baselines::DepthsMatchReference(g, 0, depths));
}

TEST(SingleBfsTest, SwitchesToBottomUpOnDenseGraph) {
  const graph::Csr g = testing::MakeRmatGraph(8, 16);
  TraversalOptions options;
  gpusim::Device device;
  SingleBfs bfs(g, 0, options);
  bool saw_bottom_up = false;
  while (!bfs.finished()) {
    saw_bottom_up |= bfs.bottom_up();
    auto s1 = device.BeginKernel("i");
    bfs.RunLevel(&s1);
    s1.End();
    auto s2 = device.BeginKernel("q");
    bfs.GenerateNextFrontier(&s2);
  }
  EXPECT_TRUE(saw_bottom_up);
}

TEST(SingleBfsTest, ForceTopDownNeverSwitches) {
  const graph::Csr g = testing::MakeRmatGraph(8, 16);
  TraversalOptions options;
  options.force_top_down = true;
  gpusim::Device device;
  SingleBfs bfs(g, 0, options);
  while (!bfs.finished()) {
    EXPECT_FALSE(bfs.bottom_up());
    auto s1 = device.BeginKernel("i");
    bfs.RunLevel(&s1);
    s1.End();
    auto s2 = device.BeginKernel("q");
    bfs.GenerateNextFrontier(&s2);
  }
  EXPECT_TRUE(baselines::DepthsMatchReference(g, 0, bfs.depths()));
}

TEST(SingleBfsTest, MaxLevelTruncates) {
  const graph::Csr g = testing::MakeDisconnectedGraph(12);  // chain
  TraversalOptions options;
  options.max_level = 3;
  gpusim::Device device;
  const auto depths = RunToEnd(g, 0, options, &device);
  EXPECT_TRUE(baselines::DepthsMatchReference(g, 0, depths, 3));
  EXPECT_EQ(depths[3], 3);
  EXPECT_EQ(depths[4], kUnvisitedDepth);
}

TEST(SingleBfsTest, ChargesDeviceWork) {
  const graph::Csr g = testing::MakeRmatGraph(7, 8);
  gpusim::Device device;
  RunToEnd(g, 0, {}, &device);
  EXPECT_GT(device.elapsed_seconds(), 0.0);
  EXPECT_GT(device.totals().mem.load_transactions, 0u);
  EXPECT_GT(device.totals().mem.store_transactions, 0u);
}

TEST(SingleBfsTest, InspectionCountersPopulated) {
  const graph::Csr g = testing::MakeRmatGraph(7, 12);
  gpusim::Device device;
  SingleBfs bfs(g, 0, {});
  while (!bfs.finished()) {
    auto s1 = device.BeginKernel("i");
    bfs.RunLevel(&s1);
    s1.End();
    auto s2 = device.BeginKernel("q");
    bfs.GenerateNextFrontier(&s2);
  }
  EXPECT_GT(bfs.total_inspections(), 0);
  EXPECT_GE(bfs.total_inspections(), bfs.bottom_up_inspections());
}

}  // namespace
}  // namespace ibfs
