// Randomized stress tests: random graphs (including pathological shapes)
// through every strategy, checked against the structural BFS validator
// and the reference oracle. Catches crashes and invariant breaks that
// fixed fixtures miss.
#include <vector>

#include "baselines/cpu_bfs.h"
#include "baselines/reference_bfs.h"
#include "core/validate.h"
#include "gpusim/device.h"
#include "graph/builder.h"
#include "gtest/gtest.h"
#include "ibfs/runner.h"
#include "util/prng.h"

namespace ibfs {
namespace {

using graph::Csr;
using graph::VertexId;

// Random graph with a seed-dependent shape: size, density, direction mix,
// self-loops, multi-edges (deduped by the builder), isolated vertices.
Csr FuzzGraph(uint64_t seed) {
  Prng prng(seed);
  const int64_t n = 2 + static_cast<int64_t>(prng.NextBounded(200));
  const int64_t m = prng.NextBounded(static_cast<uint64_t>(4 * n) + 1);
  const bool undirected = prng.NextBool(0.5);
  graph::GraphBuilder builder(n);
  for (int64_t e = 0; e < m; ++e) {
    const auto u = static_cast<VertexId>(prng.NextBounded(n));
    const auto v = prng.NextBool(0.05)
                       ? u  // occasional self-loop
                       : static_cast<VertexId>(prng.NextBounded(n));
    if (undirected) {
      builder.AddUndirectedEdge(u, v);
    } else {
      builder.AddEdge(u, v);
    }
  }
  auto result = std::move(builder).Build();
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

class FuzzStrategiesTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzStrategiesTest, AllStrategiesMatchOracleAndValidate) {
  const uint64_t seed = GetParam();
  const Csr g = FuzzGraph(seed);
  Prng prng(seed ^ 0xF00D);
  std::vector<VertexId> sources;
  const int group = 1 + static_cast<int>(prng.NextBounded(70));
  for (int i = 0; i < group; ++i) {
    sources.push_back(static_cast<VertexId>(
        prng.NextBounded(static_cast<uint64_t>(g.vertex_count()))));
  }
  for (Strategy s : {Strategy::kSequential, Strategy::kNaiveConcurrent,
                     Strategy::kJointTraversal, Strategy::kBitwise}) {
    gpusim::Device device;
    auto result = RunGroup(s, g, sources, {}, &device);
    ASSERT_TRUE(result.ok()) << StrategyName(s);
    for (size_t j = 0; j < sources.size(); ++j) {
      ASSERT_TRUE(baselines::DepthsMatchReference(g, sources[j],
                                                  result.value().depths[j]))
          << StrategyName(s) << " seed " << seed << " instance " << j;
      ASSERT_TRUE(
          ValidateBfsDepths(g, sources[j], result.value().depths[j]).ok())
          << StrategyName(s) << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStrategiesTest,
                         ::testing::Range(uint64_t{100}, uint64_t{120}));

class FuzzCpuBaselinesTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzCpuBaselinesTest, CpuBaselinesMatchOracle) {
  const uint64_t seed = GetParam();
  const Csr g = FuzzGraph(seed);
  Prng prng(seed ^ 0xBEEF);
  std::vector<VertexId> sources;
  const int group = 1 + static_cast<int>(prng.NextBounded(70));
  for (int i = 0; i < group; ++i) {
    sources.push_back(static_cast<VertexId>(
        prng.NextBounded(static_cast<uint64_t>(g.vertex_count()))));
  }
  baselines::CpuCostModel cpu;
  auto ms = baselines::RunMsBfs(g, sources, {}, &cpu);
  auto ib = baselines::RunCpuIbfs(g, sources, {}, &cpu);
  ASSERT_TRUE(ms.ok() && ib.ok());
  for (size_t j = 0; j < sources.size(); ++j) {
    ASSERT_TRUE(baselines::DepthsMatchReference(g, sources[j],
                                                ms.value().depths[j]))
        << "ms-bfs seed " << seed;
    ASSERT_TRUE(baselines::DepthsMatchReference(g, sources[j],
                                                ib.value().depths[j]))
        << "cpu-ibfs seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzCpuBaselinesTest,
                         ::testing::Range(uint64_t{200}, uint64_t{212}));

TEST(FuzzEdgeCasesTest, TwoVertexGraphs) {
  // Smallest interesting graphs: isolated pair, single edge, self-loop.
  for (int variant = 0; variant < 3; ++variant) {
    graph::GraphBuilder builder(2);
    if (variant == 1) builder.AddEdge(0, 1);
    if (variant == 2) builder.AddEdge(0, 0);
    auto g = std::move(builder).Build();
    ASSERT_TRUE(g.ok());
    const std::vector<VertexId> sources = {0, 1};
    for (Strategy s : {Strategy::kSequential, Strategy::kJointTraversal,
                       Strategy::kBitwise}) {
      gpusim::Device device;
      auto result = RunGroup(s, g.value(), sources, {}, &device);
      ASSERT_TRUE(result.ok());
      for (size_t j = 0; j < sources.size(); ++j) {
        EXPECT_TRUE(baselines::DepthsMatchReference(
            g.value(), sources[j], result.value().depths[j]))
            << "variant " << variant;
      }
    }
  }
}

TEST(FuzzEdgeCasesTest, StarAndCompleteGraphs) {
  // Star: maximal hub sharing. Complete: diameter 1, instant bottom-up.
  graph::GraphBuilder star(33);
  for (int leaf = 1; leaf < 33; ++leaf) {
    star.AddUndirectedEdge(0, static_cast<VertexId>(leaf));
  }
  auto star_g = std::move(star).Build();
  ASSERT_TRUE(star_g.ok());

  graph::GraphBuilder complete(16);
  for (int u = 0; u < 16; ++u) {
    for (int v = u + 1; v < 16; ++v) {
      complete.AddUndirectedEdge(static_cast<VertexId>(u),
                                 static_cast<VertexId>(v));
    }
  }
  auto complete_g = std::move(complete).Build();
  ASSERT_TRUE(complete_g.ok());

  for (const Csr* g : {&star_g.value(), &complete_g.value()}) {
    std::vector<VertexId> sources;
    for (int64_t v = 0; v < g->vertex_count(); ++v) {
      sources.push_back(static_cast<VertexId>(v));
    }
    gpusim::Device device;
    auto result = RunGroup(Strategy::kBitwise, *g, sources, {}, &device);
    ASSERT_TRUE(result.ok());
    for (size_t j = 0; j < sources.size(); ++j) {
      EXPECT_TRUE(baselines::DepthsMatchReference(*g, sources[j],
                                                  result.value().depths[j]));
    }
  }
}

}  // namespace
}  // namespace ibfs
