#include "gtest/gtest.h"
#include "ibfs/bitwise_status_array.h"
#include "ibfs/frontier_queue.h"
#include "ibfs/status_array.h"
#include "ibfs/trace.h"

namespace ibfs {
namespace {

TEST(JointStatusArrayTest, StartsUnvisited) {
  JointStatusArray jsa(16, 4);
  for (int64_t v = 0; v < 16; ++v) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FALSE(jsa.IsVisited(static_cast<graph::VertexId>(v), j));
      EXPECT_EQ(jsa.Depth(static_cast<graph::VertexId>(v), j),
                kUnvisitedDepth);
    }
  }
}

TEST(JointStatusArrayTest, SetAndReadDepth) {
  JointStatusArray jsa(8, 3);
  jsa.SetDepth(5, 1, 7);
  EXPECT_EQ(jsa.Depth(5, 1), 7);
  EXPECT_TRUE(jsa.IsVisited(5, 1));
  EXPECT_FALSE(jsa.IsVisited(5, 0));
  EXPECT_FALSE(jsa.IsVisited(5, 2));
}

TEST(JointStatusArrayTest, RowIsContiguousPerVertex) {
  JointStatusArray jsa(4, 8);
  // Element index layout: v * N + j, the coalescing-friendly layout of
  // Section 4 (statuses of one vertex side by side).
  EXPECT_EQ(jsa.ElementIndex(0, 0), 0);
  EXPECT_EQ(jsa.ElementIndex(0, 7), 7);
  EXPECT_EQ(jsa.ElementIndex(1, 0), 8);
  EXPECT_EQ(jsa.ElementIndex(3, 5), 29);
  EXPECT_EQ(jsa.Row(2).size(), 8u);
}

TEST(JointStatusArrayTest, StorageBytesIsVertexTimesInstances) {
  JointStatusArray jsa(100, 64);
  EXPECT_EQ(jsa.StorageBytes(), 6400);
}

TEST(BitwiseStatusArrayTest, WordsPerVertex) {
  EXPECT_EQ(BitwiseStatusArray(4, 1).words_per_vertex(), 1);
  EXPECT_EQ(BitwiseStatusArray(4, 64).words_per_vertex(), 1);
  EXPECT_EQ(BitwiseStatusArray(4, 65).words_per_vertex(), 2);
  EXPECT_EQ(BitwiseStatusArray(4, 128).words_per_vertex(), 2);
  EXPECT_EQ(BitwiseStatusArray(4, 129).words_per_vertex(), 3);
}

TEST(BitwiseStatusArrayTest, SetAndTestBits) {
  BitwiseStatusArray bsa(8, 70);
  EXPECT_FALSE(bsa.TestBit(3, 69));
  bsa.SetBit(3, 69);
  EXPECT_TRUE(bsa.TestBit(3, 69));
  EXPECT_FALSE(bsa.TestBit(3, 68));
  EXPECT_FALSE(bsa.TestBit(4, 69));
}

TEST(BitwiseStatusArrayTest, RowAllSetRespectsLastWordMask) {
  BitwiseStatusArray bsa(2, 70);
  EXPECT_TRUE(bsa.RowAllClear(0));
  for (int j = 0; j < 70; ++j) bsa.SetBit(0, j);
  EXPECT_TRUE(bsa.RowAllSet(0));
  EXPECT_FALSE(bsa.RowAllClear(0));
  // One missing bit anywhere breaks all-set.
  BitwiseStatusArray bsa2(2, 70);
  for (int j = 0; j < 69; ++j) bsa2.SetBit(0, j);
  EXPECT_FALSE(bsa2.RowAllSet(0));
}

TEST(BitwiseStatusArrayTest, RowPopCount) {
  BitwiseStatusArray bsa(2, 128);
  EXPECT_EQ(bsa.RowPopCount(1), 0);
  bsa.SetBit(1, 0);
  bsa.SetBit(1, 63);
  bsa.SetBit(1, 64);
  bsa.SetBit(1, 127);
  EXPECT_EQ(bsa.RowPopCount(1), 4);
}

TEST(BitwiseStatusArrayTest, OrRowFromReportsChange) {
  BitwiseStatusArray a(2, 66);
  BitwiseStatusArray b(2, 66);
  b.SetBit(0, 65);
  EXPECT_TRUE(a.OrRowFrom(1, b, 0));
  EXPECT_TRUE(a.TestBit(1, 65));
  // Second OR with the same source changes nothing.
  EXPECT_FALSE(a.OrRowFrom(1, b, 0));
}

TEST(BitwiseStatusArrayTest, CopyFrom) {
  BitwiseStatusArray a(4, 32);
  BitwiseStatusArray b(4, 32);
  a.SetBit(2, 5);
  b.CopyFrom(a);
  EXPECT_TRUE(b.TestBit(2, 5));
  EXPECT_FALSE(b.TestBit(2, 4));
}

TEST(BitwiseStatusArrayTest, JsaToBsaMappingShrinksStorage) {
  // Figure 12's point: one bit instead of one byte per (vertex, instance).
  JointStatusArray jsa(1024, 128);
  BitwiseStatusArray bsa(1024, 128);
  EXPECT_EQ(jsa.StorageBytes() / bsa.StorageBytes(), 8);
}

TEST(FrontierQueueTest, PushSizeClearSwap) {
  FrontierQueue q;
  EXPECT_TRUE(q.empty());
  q.Push(3);
  q.Push(7);
  EXPECT_EQ(q.size(), 2);
  EXPECT_EQ(q.vertices()[1], 7u);
  FrontierQueue other;
  other.Push(1);
  q.Swap(other);
  EXPECT_EQ(q.size(), 1);
  EXPECT_EQ(other.size(), 2);
  q.Clear();
  EXPECT_TRUE(q.empty());
}

TEST(TraceTest, SharingDegreeMatchesEquationOne) {
  GroupTrace trace;
  trace.instance_count = 4;
  // Level 1: 4 private frontiers collapse into 1 joint entry (SD 4).
  trace.levels.push_back({1, false, 1, 4, 0, 0});
  // Level 2: 8 private over 4 joint (SD 2).
  trace.levels.push_back({2, false, 4, 8, 0, 0});
  EXPECT_DOUBLE_EQ(trace.SharingDegree(), 12.0 / 5.0);
  EXPECT_DOUBLE_EQ(trace.SharingRatio(), 12.0 / 5.0 / 4.0);
  EXPECT_DOUBLE_EQ(trace.LevelSharingDegree(1), 4.0);
  EXPECT_DOUBLE_EQ(trace.LevelSharingDegree(2), 2.0);
  EXPECT_DOUBLE_EQ(trace.LevelSharingDegree(9), 0.0);
}

TEST(TraceTest, DirectionRestrictedSharing) {
  GroupTrace trace;
  trace.instance_count = 2;
  trace.levels.push_back({1, false, 2, 2, 0, 0});   // top-down, SD 1
  trace.levels.push_back({2, true, 2, 4, 0, 0});    // bottom-up, SD 2
  EXPECT_DOUBLE_EQ(trace.DirectionSharingDegree(false), 1.0);
  EXPECT_DOUBLE_EQ(trace.DirectionSharingDegree(true), 2.0);
  EXPECT_DOUBLE_EQ(trace.DirectionSharingRatio(true), 1.0);
}

TEST(TraceTest, EmptyTraceIsZero) {
  GroupTrace trace;
  EXPECT_EQ(trace.SharingDegree(), 0.0);
  EXPECT_EQ(trace.SharingRatio(), 0.0);
  EXPECT_EQ(trace.TotalInspections(), 0);
}

TEST(TraceTest, TotalInspectionsSumsLevels) {
  GroupTrace trace;
  trace.levels.push_back({1, false, 1, 1, 10, 0});
  trace.levels.push_back({2, true, 1, 1, 32, 0});
  EXPECT_EQ(trace.TotalInspections(), 42);
}

}  // namespace
}  // namespace ibfs
