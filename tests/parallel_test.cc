// Tests for the host-side parallel execution layer: the work-stealing
// thread pool, bit-exact determinism of parallel engine/cluster runs, and
// thread safety of the telemetry sinks under concurrent emission.
//
// Determinism here means *bit-identical*, not approximately equal: every
// double is compared with EXPECT_EQ. The engine earns this by running each
// group on its own fresh simulated device and merging in group order, so
// no floating-point accumulation order depends on the thread count.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster_engine.h"
#include "core/engine.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace ibfs {
namespace {

using ::ibfs::testing::MakeRmatGraph;

// ------------------------------------------------------- thread pool --

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRunsInlineForSingleItem) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(1, [&](int64_t i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  pool.ParallelFor(0, [&](int64_t) { FAIL() << "no items, no calls"; });
}

TEST(ThreadPool, CurrentWorkerIndexIsInRangeOnPoolAndMinusOneOff) {
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  ThreadPool pool(3);
  std::mutex mu;
  std::set<int> seen;
  pool.ParallelFor(64, [&](int64_t) {
    const int index = ThreadPool::CurrentWorkerIndex();
    EXPECT_GE(index, 0);
    EXPECT_LT(index, pool.thread_count());
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(index);
  });
  EXPECT_GE(seen.size(), 1u);
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
}

TEST(ThreadPool, SubmitFromWorkerIsExecuted) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  // A worker-submitted task lands on the worker's own deque and must still
  // be drained before ParallelFor's tasks release the caller... exercise it
  // through a nested Submit + its own completion flag.
  std::mutex mu;
  std::condition_variable cv;
  int inner_done = 0;
  pool.ParallelFor(8, [&](int64_t) {
    pool.Submit([&] {
      done.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      ++inner_done;
      cv.notify_one();
    });
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return inner_done == 8; });
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, NestedParallelForFromWorkerRunsInline) {
  // Regression: ParallelFor from one of the pool's own workers used to
  // block that worker on the completion latch while the nested iterations
  // sat in its deque — a guaranteed deadlock on a 1-thread pool. The fix
  // detects the nesting and runs the iterations inline on the worker.
  ThreadPool pool(1);
  std::atomic<int> inner_calls{0};
  std::atomic<int> nested_worker{-2};
  std::mutex mu;
  std::condition_variable cv;
  bool outer_done = false;
  pool.Submit([&] {
    pool.ParallelFor(4, [&](int64_t) {
      // Inline execution stays on the calling worker thread.
      nested_worker.store(ThreadPool::CurrentWorkerIndex());
      inner_calls.fetch_add(1);
    });
    std::lock_guard<std::mutex> lock(mu);
    outer_done = true;
    cv.notify_one();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    // Bounded wait: before the fix this timed out (deadlock) instead of
    // hanging the whole suite.
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return outer_done; }));
  }
  EXPECT_EQ(inner_calls.load(), 4);
  EXPECT_EQ(nested_worker.load(), 0);
}

TEST(ThreadPool, NestedParallelForStillCoversEveryIndex) {
  // The multi-thread variant: nesting must preserve exactly-once coverage
  // whether iterations run inline or not.
  ThreadPool pool(2);
  constexpr int64_t kOuter = 4;
  constexpr int64_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](int64_t o) {
    pool.ParallelFor(kInner, [&](int64_t i) {
      hits[o * kInner + i].fetch_add(1);
    });
  });
  for (int64_t k = 0; k < kOuter * kInner; ++k) {
    EXPECT_EQ(hits[k].load(), 1) << "slot " << k;
  }
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1);
  int calls = 0;
  pool.ParallelFor(3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 3);
}

TEST(ThreadPool, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
}

// ------------------------------------------------ engine determinism --

void ExpectSameKernelStats(const gpusim::KernelStats& a,
                           const gpusim::KernelStats& b) {
  EXPECT_EQ(a.mem.load_transactions, b.mem.load_transactions);
  EXPECT_EQ(a.mem.store_transactions, b.mem.store_transactions);
  EXPECT_EQ(a.mem.load_requests, b.mem.load_requests);
  EXPECT_EQ(a.mem.store_requests, b.mem.store_requests);
  EXPECT_EQ(a.mem.atomic_ops, b.mem.atomic_ops);
  EXPECT_EQ(a.mem.shared_bytes, b.mem.shared_bytes);
  EXPECT_EQ(a.compute_cycles, b.compute_cycles);
  EXPECT_EQ(a.max_item_cycles, b.max_item_cycles);
  EXPECT_EQ(a.item_count, b.item_count);
  EXPECT_EQ(a.launch_count, b.launch_count);
  EXPECT_EQ(a.seconds, b.seconds);
}

// Bit-exact comparison of everything except wall_seconds (the only field
// parallelism is allowed to change).
void ExpectSameEngineResult(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.teps, b.teps);
  EXPECT_EQ(a.group_seconds, b.group_seconds);
  EXPECT_EQ(a.group_sources, b.group_sources);
  EXPECT_EQ(a.group_hubs, b.group_hubs);
  EXPECT_EQ(a.rule_matched, b.rule_matched);
  ExpectSameKernelStats(a.totals, b.totals);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (const auto& [phase, stats] : a.phases) {
    ASSERT_TRUE(b.phases.count(phase)) << phase;
    ExpectSameKernelStats(stats, b.phases.at(phase));
  }
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (size_t g = 0; g < a.groups.size(); ++g) {
    const GroupResult& ga = a.groups[g];
    const GroupResult& gb = b.groups[g];
    EXPECT_EQ(ga.depths, gb.depths) << "group " << g;
    EXPECT_EQ(ga.trace.instance_count, gb.trace.instance_count);
    EXPECT_EQ(ga.trace.bottom_up_inspections_per_instance,
              gb.trace.bottom_up_inspections_per_instance);
    EXPECT_EQ(ga.trace.bottom_up_search_lengths.count(),
              gb.trace.bottom_up_search_lengths.count());
    EXPECT_EQ(ga.trace.bottom_up_search_lengths.sum(),
              gb.trace.bottom_up_search_lengths.sum());
    ASSERT_EQ(ga.trace.levels.size(), gb.trace.levels.size())
        << "group " << g;
    for (size_t l = 0; l < ga.trace.levels.size(); ++l) {
      const LevelTrace& la = ga.trace.levels[l];
      const LevelTrace& lb = gb.trace.levels[l];
      EXPECT_EQ(la.level, lb.level);
      EXPECT_EQ(la.bottom_up, lb.bottom_up);
      EXPECT_EQ(la.jfq_size, lb.jfq_size);
      EXPECT_EQ(la.private_fq_sum, lb.private_fq_sum);
      EXPECT_EQ(la.edges_inspected, lb.edges_inspected);
      EXPECT_EQ(la.new_visits, lb.new_visits);
    }
  }
}

EngineResult RunWithThreads(const graph::Csr& graph, Strategy strategy,
                            GroupingPolicy grouping, int threads) {
  EngineOptions options;
  options.strategy = strategy;
  options.grouping = grouping;
  options.group_size = 16;  // several groups from 64 sources
  options.threads = threads;
  options.keep_depths = true;
  options.traversal.collect_instance_stats = true;
  Engine engine(&graph, options);
  std::vector<graph::VertexId> sources;
  for (int s = 0; s < 64; ++s) {
    sources.push_back(static_cast<graph::VertexId>(s));
  }
  auto result = engine.Run(sources);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

struct ParallelCase {
  Strategy strategy;
  GroupingPolicy grouping;
};

class EngineDeterminismTest : public ::testing::TestWithParam<ParallelCase> {
};

TEST_P(EngineDeterminismTest, IdenticalAcrossThreadCounts) {
  const graph::Csr graph = MakeRmatGraph(/*scale=*/7, /*edge_factor=*/8);
  const ParallelCase param = GetParam();
  const EngineResult serial =
      RunWithThreads(graph, param.strategy, param.grouping, 1);
  for (int threads : {2, 8}) {
    const EngineResult parallel =
        RunWithThreads(graph, param.strategy, param.grouping, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameEngineResult(serial, parallel);
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<ParallelCase>& info) {
  std::string name;
  switch (info.param.strategy) {
    case Strategy::kSequential: name = "Sequential"; break;
    case Strategy::kNaiveConcurrent: name = "Naive"; break;
    case Strategy::kJointTraversal: name = "Joint"; break;
    case Strategy::kBitwise: name = "Bitwise"; break;
  }
  switch (info.param.grouping) {
    case GroupingPolicy::kInOrder: name += "InOrder"; break;
    case GroupingPolicy::kRandom: name += "Random"; break;
    case GroupingPolicy::kGroupBy: name += "GroupBy"; break;
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAndGroupings, EngineDeterminismTest,
    ::testing::Values(
        ParallelCase{Strategy::kSequential, GroupingPolicy::kInOrder},
        ParallelCase{Strategy::kSequential, GroupingPolicy::kRandom},
        ParallelCase{Strategy::kSequential, GroupingPolicy::kGroupBy},
        ParallelCase{Strategy::kNaiveConcurrent, GroupingPolicy::kInOrder},
        ParallelCase{Strategy::kNaiveConcurrent, GroupingPolicy::kRandom},
        ParallelCase{Strategy::kNaiveConcurrent, GroupingPolicy::kGroupBy},
        ParallelCase{Strategy::kJointTraversal, GroupingPolicy::kInOrder},
        ParallelCase{Strategy::kJointTraversal, GroupingPolicy::kRandom},
        ParallelCase{Strategy::kJointTraversal, GroupingPolicy::kGroupBy},
        ParallelCase{Strategy::kBitwise, GroupingPolicy::kInOrder},
        ParallelCase{Strategy::kBitwise, GroupingPolicy::kRandom},
        ParallelCase{Strategy::kBitwise, GroupingPolicy::kGroupBy}),
    CaseName);

TEST(EngineParallel, ZeroThreadsMeansHardwareConcurrency) {
  const graph::Csr graph = MakeRmatGraph(/*scale=*/6, /*edge_factor=*/6);
  const EngineResult serial = RunWithThreads(
      graph, Strategy::kBitwise, GroupingPolicy::kGroupBy, 1);
  const EngineResult automatic = RunWithThreads(
      graph, Strategy::kBitwise, GroupingPolicy::kGroupBy, 0);
  ExpectSameEngineResult(serial, automatic);
}

TEST(EngineParallel, RejectsNegativeThreads) {
  const graph::Csr graph = MakeRmatGraph(/*scale=*/5, /*edge_factor=*/4);
  EngineOptions options;
  options.threads = -1;
  Engine engine(&graph, options);
  const std::vector<graph::VertexId> sources = {0, 1, 2};
  EXPECT_FALSE(engine.Run(sources).ok());
}

TEST(EngineParallel, MetricsCountersMatchSerialRun) {
  const graph::Csr graph = MakeRmatGraph(/*scale=*/6, /*edge_factor=*/6);
  auto counters_with_threads = [&](int threads) {
    obs::MetricsRegistry metrics;
    EngineOptions options;
    options.threads = threads;
    options.group_size = 8;
    options.observer.metrics = &metrics;
    Engine engine(&graph, options);
    std::vector<graph::VertexId> sources;
    for (int s = 0; s < 32; ++s) {
      sources.push_back(static_cast<graph::VertexId>(s));
    }
    auto result = engine.Run(sources);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::pair<std::string, int64_t>> values;
    for (const char* name : {"engine.levels", "engine.groups",
                             "gpusim.kernel_launches",
                             "gpusim.load_transactions",
                             "gpusim.store_transactions"}) {
      const obs::Counter* c = metrics.FindCounter(name);
      EXPECT_NE(c, nullptr) << name;
      values.emplace_back(name, c == nullptr ? -1 : c->value());
    }
    return values;
  };
  EXPECT_EQ(counters_with_threads(1), counters_with_threads(8));
}

// ----------------------------------------------- cluster determinism --

TEST(ClusterParallel, ScheduleIdenticalAcrossThreadCounts) {
  const graph::Csr graph = MakeRmatGraph(/*scale=*/7, /*edge_factor=*/8);
  std::vector<graph::VertexId> sources;
  for (int s = 0; s < 64; ++s) {
    sources.push_back(static_cast<graph::VertexId>(s));
  }
  auto run = [&](int threads) {
    EngineOptions options;
    options.group_size = 8;
    options.threads = threads;
    auto result = RunOnCluster(graph, sources, options, /*device_count=*/3,
                               gpusim::PlacementPolicy::kLpt);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };
  const ClusterRunResult serial = run(1);
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const ClusterRunResult parallel = run(threads);
    EXPECT_EQ(serial.single_device_seconds, parallel.single_device_seconds);
    EXPECT_EQ(serial.speedup, parallel.speedup);
    EXPECT_EQ(serial.teps, parallel.teps);
    EXPECT_EQ(serial.group_count, parallel.group_count);
    EXPECT_EQ(serial.schedule.device_seconds,
              parallel.schedule.device_seconds);
    EXPECT_EQ(serial.schedule.unit_device, parallel.schedule.unit_device);
    EXPECT_EQ(serial.schedule.unit_start_seconds,
              parallel.schedule.unit_start_seconds);
    EXPECT_EQ(serial.schedule.makespan_seconds,
              parallel.schedule.makespan_seconds);
    ExpectSameEngineResult(serial.engine, parallel.engine);
  }
}

// ------------------------------------------------- telemetry hammers --

TEST(ObsThreadSafety, MetricsRegistryHammer) {
  obs::MetricsRegistry metrics;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics, t] {
      for (int i = 0; i < kIters; ++i) {
        // Shared handles: every thread bangs on the same counter, gauge,
        // and histogram, re-resolving them through the registry to also
        // race the creation path.
        metrics.GetCounter("hammer.shared")->Increment();
        metrics.GetGauge("hammer.gauge")->Set(static_cast<double>(i));
        const double bounds[] = {1.0, 2.0, 4.0, 8.0};
        metrics.GetHistogram("hammer.hist", bounds)
            ->Observe(static_cast<double>(i % 10));
        // Per-thread metric: exercises concurrent map inserts.
        metrics.GetCounter("hammer.thread." + std::to_string(t))
            ->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(metrics.FindCounter("hammer.shared")->value(),
            int64_t{kThreads} * kIters);
  EXPECT_EQ(metrics.FindHistogram("hammer.hist")->count(),
            int64_t{kThreads} * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        metrics.FindCounter("hammer.thread." + std::to_string(t))->value(),
        kIters);
  }
  // The snapshot must be well-formed JSON after all that.
  auto parsed = obs::ParseJson(metrics.ToJson());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST(ObsThreadSafety, TracerHammer) {
  obs::Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      const obs::TraceTrack track{/*pid=*/0, /*tid=*/t};
      for (int i = 0; i < kIters; ++i) {
        const double ts = static_cast<double>(i);
        tracer.CompleteSpan(track, "span", "kernel", ts, 0.5,
                            {obs::Arg("i", int64_t{i})});
        tracer.Instant(track, "marker", ts);
        tracer.CounterValue(track, "load", ts, static_cast<double>(i));
        tracer.BeginSpan(track, "nested", "level", ts);
        tracer.EndSpan(track, ts + 0.25);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // 4 emitted events per iteration per thread (Begin/End collapse to one).
  EXPECT_EQ(tracer.event_count(),
            static_cast<size_t>(kThreads) * kIters * 4);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(tracer.OpenSpans({0, t}), 0u);
  }
  std::ostringstream os;
  tracer.WriteJson(os);
  auto parsed = obs::ParseJson(os.str());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

}  // namespace
}  // namespace ibfs
