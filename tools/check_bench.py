#!/usr/bin/env python3
"""Regression gate for the committed bench JSONs.

With ``--binary`` it runs a fresh ``gpusim_bench`` at the exact
configuration recorded in the committed ``BENCH_gpusim.json`` and compares:

* **Exact** (bit-identical, machine-independent): depth/serve checksums,
  transaction counters, and simulated seconds of every section. These come
  out of the deterministic timing model, so any drift is a real behavior
  change — the same invariant tests/gpusim_perf_test.cc pins against
  goldens, checked here end-to-end through the bench harness.
* **Banded** (machine-dependent): wall-clock per section must stay within
  ``--tolerance`` times the committed number (default 4x — generous, the
  gate is for catastrophic regressions like an accidental O(n) rescan in a
  hot loop, not for CI-noise policing).

With ``--fleet-binary`` it applies the same split to ``fleet_bench`` and
the committed ``BENCH_fleet.json``: the baseline checksum and query count
are exact (the fleet's answers are a deterministic function of the seeded
workload), every shard point and replication row must keep
``checksum_match`` true, the failover and elastic sections must keep zero
unanswered futures and zero mismatches (and the elastic episode must have
actually joined a shard), while the per-point p50/p99 latencies are
banded. ``--elastic-only`` runs the bench with
``IBFS_FLEET_SECTIONS=elastic`` and gates only the elastic + replication
sections — the fast availability smoke wired into ctest as
``fleet_elastic_smoke``.

With ``--partition-binary`` it gates ``partition_bench`` against the
committed ``BENCH_partition.json``: the baseline depth checksum, every
point's ``checksum_match`` (partitioned depths bit-identical to the
unpartitioned engine), and the deterministic comm-model outputs
(compute/comm/sim seconds, bytes on wire, rounds, supersteps) are exact;
the comm model's shape is asserted structurally (all-gather comm seconds
grow monotonically with P, the butterfly beats the all-gather at P >= 4
on identical byte volume); ``wall_seconds`` is banded.

Usage:
  check_bench.py REPO_ROOT --binary PATH/TO/gpusim_bench [options]
  check_bench.py REPO_ROOT --fleet-binary PATH/TO/fleet_bench [options]
  check_bench.py REPO_ROOT --fleet-binary PATH --elastic-only
  check_bench.py REPO_ROOT --partition-binary PATH/TO/partition_bench

Exit status 0 on pass, 1 on any violation, 2 on harness errors.
The serve section is skipped by default (slow, latency-noisy); pass
--serve to include its checksum in the exact comparison.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# Sections holding a deterministic simulated-model fingerprint.
EXACT_KEYS = {
    "accounting": ["sim_seconds", "load_transactions"],
    "bitwise_sweep": [
        "sim_seconds",
        "depth_checksum",
        "load_transactions",
        "store_transactions",
        "atomic_ops",
    ],
    "joint_sweep": [
        "sim_seconds",
        "depth_checksum",
        "load_transactions",
        "store_transactions",
        "atomic_ops",
    ],
}

WALL_KEYS = {
    "accounting": "seconds",
    "bitwise_sweep": "wall_seconds_best",
    "joint_sweep": "wall_seconds_best",
}


def fail(msg):
    print(f"check_bench: FAIL: {msg}")
    return 1


def load_committed(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def run_bench(binary, env, timeout=600):
    """Runs one bench binary into a temp file and returns the parsed JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        out_path = os.path.join(tmp, "bench.json")
        env["IBFS_BENCH_OUT"] = out_path
        subprocess.run(
            [binary], env=env, check=True, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, timeout=timeout,
        )
        with open(out_path, encoding="utf-8") as f:
            return json.load(f)


def check_fleet(args):
    """Gates fleet_bench against the committed BENCH_fleet.json."""
    committed_path = args.committed or os.path.join(args.root, "BENCH_fleet.json")
    try:
        committed = load_committed(committed_path)
    except OSError as e:
        print(f"check_bench: cannot read {committed_path}: {e}")
        return 2

    env = dict(os.environ)
    # Reproduce the committed workload exactly; the baseline checksum is
    # only comparable at an identical graph/seeded arrival schedule.
    env["IBFS_GRAPH"] = str(committed.get("graph", "PK"))
    env["IBFS_FLEET_QPS"] = str(committed.get("qps", 400.0))
    env["IBFS_FLEET_DURATION"] = str(committed.get("duration_seconds", 1.0))
    env["IBFS_FLEET_VNODES"] = str(committed.get("vnodes", 128))
    env["IBFS_FLEET_SECTIONS"] = "elastic" if args.elastic_only else "all"
    try:
        fresh = run_bench(args.fleet_binary, env)
    except (subprocess.SubprocessError, OSError) as e:
        print(f"check_bench: fleet bench run failed: {e}")
        return 2

    rc = 0
    # Exact fingerprint: the deterministic answers and their coverage.
    for key in ("queries",):
        if committed.get(key) != fresh.get(key):
            rc = fail(
                f"fleet {key}: fresh {fresh.get(key)!r} != committed "
                f"{committed.get(key)!r} (workload drifted)"
            )
    want = committed.get("baseline", {}).get("checksum")
    got = fresh.get("baseline", {}).get("checksum")
    if want != got:
        rc = fail(
            f"fleet baseline.checksum: fresh {got!r} != committed {want!r} "
            "(deterministic answers drifted)"
        )
    if not args.elastic_only:
        for point in fresh.get("points", []):
            if not point.get("checksum_match"):
                rc = fail(
                    f"fleet {point.get('shards')}-shard point lost checksum "
                    "parity with the single-service baseline"
                )
        if not fresh.get("scatter", {}).get("checksum_match"):
            rc = fail("fleet scatter section lost checksum parity")
        failover = fresh.get("failover", {})
        if failover.get("unanswered", 0) != 0:
            rc = fail(f"fleet failover left {failover.get('unanswered')} "
                      "futures unanswered")
        if failover.get("checksum_mismatches", 0) != 0:
            rc = fail(f"fleet failover produced "
                      f"{failover.get('checksum_mismatches')} checksum "
                      "mismatches")

    # Elastic episode: kill + join with traffic flowing must lose nothing.
    elastic = fresh.get("elastic", {})
    if not elastic:
        rc = fail("fleet bench emitted no elastic section")
    if elastic.get("unanswered", 0) != 0:
        rc = fail(f"fleet elastic episode left {elastic.get('unanswered')} "
                  "futures unanswered")
    if elastic.get("checksum_mismatches", 0) != 0:
        rc = fail(f"fleet elastic episode produced "
                  f"{elastic.get('checksum_mismatches')} checksum "
                  "mismatches")
    if elastic.get("shard_joins", 0) < 1:
        rc = fail("fleet elastic episode never joined a shard")

    # Replication sweep: answers stay bit-identical at every R, replicas
    # never disagree.
    replication = fresh.get("replication", [])
    if not replication:
        rc = fail("fleet bench emitted no replication section")
    for row in replication:
        r = row.get("replication")
        if not row.get("checksum_match"):
            rc = fail(f"fleet R={r} row lost checksum parity with the "
                      "single-service baseline")
        if row.get("replica_mismatches", 0) != 0:
            rc = fail(f"fleet R={r} row produced "
                      f"{row.get('replica_mismatches')} replica mismatches")

    # Banded: per-point / per-row latency vs the committed run.
    banded = []
    if not args.elastic_only:
        committed_points = {
            p.get("shards"): p for p in committed.get("points", [])
        }
        for point in fresh.get("points", []):
            shards = point.get("shards")
            base = committed_points.get(shards)
            if base is not None:
                banded.append((f"fleet[{shards}]", base, point))
        if committed.get("elastic"):
            banded.append(("fleet.elastic", committed["elastic"], elastic))
    committed_rows = {
        r.get("replication"): r for r in committed.get("replication", [])
    }
    for row in replication:
        base = committed_rows.get(row.get("replication"))
        if base is not None:
            banded.append((f"fleet[R={row.get('replication')}]", base, row))
    for label, base, point in banded:
        for key in ("p50_ms", "p99_ms"):
            want = base.get(key)
            got = point.get(key)
            if not want or not got:
                continue
            ratio = got / want
            status = "ok" if ratio <= args.tolerance else "REGRESSION"
            print(
                f"check_bench: {label}.{key}: {got:.3f}ms vs "
                f"committed {want:.3f}ms ({ratio:.2f}x, band "
                f"{args.tolerance:.1f}x) {status}"
            )
            if ratio > args.tolerance:
                rc = fail(
                    f"{label}.{key} {ratio:.2f}x over committed, "
                    f"band {args.tolerance:.1f}x"
                )
    if rc == 0:
        print("check_bench: fleet PASS")
    return rc


def check_partition(args):
    """Gates partition_bench against the committed BENCH_partition.json."""
    committed_path = args.committed or os.path.join(
        args.root, "BENCH_partition.json"
    )
    try:
        committed = load_committed(committed_path)
    except OSError as e:
        print(f"check_bench: cannot read {committed_path}: {e}")
        return 2

    config = committed.get("config", {})
    env = dict(os.environ)
    # Reproduce the committed workload exactly; the checksums and the
    # deterministic comm-model outputs are only comparable at an
    # identical graph / instance count / group size.
    env["IBFS_GRAPH"] = str(committed.get("graph", "PK"))
    env["IBFS_PARTITION_INSTANCES"] = str(config.get("instances", 64))
    env["IBFS_PARTITION_GROUP"] = str(config.get("group_size", 32))
    try:
        fresh = run_bench(args.partition_binary, env)
    except (subprocess.SubprocessError, OSError) as e:
        print(f"check_bench: partition bench run failed: {e}")
        return 2

    rc = 0
    want = committed.get("baseline", {}).get("depth_checksum")
    got = fresh.get("baseline", {}).get("depth_checksum")
    if want != got:
        rc = fail(
            f"partition baseline.depth_checksum: fresh {got!r} != committed "
            f"{want!r} (deterministic answers drifted)"
        )

    def point_key(point):
        return (point.get("partitions"), point.get("schedule"))

    committed_points = {point_key(p): p for p in committed.get("points", [])}
    fresh_points = fresh.get("points", [])
    if {point_key(p) for p in fresh_points} != set(committed_points):
        rc = fail("partition point set differs from the committed sweep")

    # Exact: parity with the unpartitioned engine plus every deterministic
    # model output. These are pure functions of (graph, P, schedule), so
    # any drift is a real behavior change.
    exact_keys = (
        "compute_seconds",
        "comm_seconds",
        "sim_seconds",
        "bytes_on_wire",
        "rounds",
        "supersteps",
        "edge_imbalance",
    )
    for point in fresh_points:
        p, schedule = point_key(point)
        label = f"partition[P={p},{schedule}]"
        if not point.get("checksum_match"):
            rc = fail(f"{label} lost depth parity with the engine")
        base = committed_points.get((p, schedule))
        if base is None:
            continue
        for key in exact_keys:
            if base.get(key) != point.get(key):
                rc = fail(
                    f"{label}.{key}: fresh {point.get(key)!r} != committed "
                    f"{base.get(key)!r} (deterministic model output drifted)"
                )

    # Structural shape of the comm model, independent of committed values.
    allgather = sorted(
        (p for p in fresh_points if p.get("schedule") == "allgather"),
        key=lambda p: p.get("partitions", 0),
    )
    for prev, cur in zip(allgather, allgather[1:]):
        if cur.get("comm_seconds", 0) <= prev.get("comm_seconds", 0) and (
            cur.get("partitions", 0) > 1
        ):
            rc = fail(
                f"all-gather comm seconds did not grow from "
                f"P={prev.get('partitions')} to P={cur.get('partitions')}"
            )
    by_key = {point_key(p): p for p in fresh_points}
    for p in sorted({k[0] for k in by_key} - {1}):
        ag = by_key.get((p, "allgather"))
        bf = by_key.get((p, "butterfly"))
        if ag is None or bf is None:
            continue
        if ag.get("bytes_on_wire") != bf.get("bytes_on_wire"):
            rc = fail(f"schedules moved different byte volumes at P={p}")
        if p >= 4 and bf.get("comm_seconds", 0) >= ag.get("comm_seconds", 0):
            rc = fail(
                f"butterfly did not beat the all-gather at P={p} "
                f"({bf.get('comm_seconds')} vs {ag.get('comm_seconds')})"
            )

    # Banded: wall clock per point vs the committed run.
    for point in fresh_points:
        base = committed_points.get(point_key(point))
        if base is None:
            continue
        want = base.get("wall_seconds")
        got = point.get("wall_seconds")
        if not want or not got:
            continue
        ratio = got / want
        p, schedule = point_key(point)
        status = "ok" if ratio <= args.tolerance else "REGRESSION"
        print(
            f"check_bench: partition[P={p},{schedule}].wall_seconds: "
            f"{got:.4f}s vs committed {want:.4f}s ({ratio:.2f}x, band "
            f"{args.tolerance:.1f}x) {status}"
        )
        if ratio > args.tolerance:
            rc = fail(
                f"partition[P={p},{schedule}].wall_seconds {ratio:.2f}x "
                f"over committed, band {args.tolerance:.1f}x"
            )
    if rc == 0:
        print("check_bench: partition PASS")
    return rc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("root", help="repository root (holds the bench JSONs)")
    parser.add_argument("--binary", default=None, help="gpusim_bench executable")
    parser.add_argument(
        "--fleet-binary", default=None, help="fleet_bench executable"
    )
    parser.add_argument(
        "--partition-binary", default=None, help="partition_bench executable"
    )
    parser.add_argument(
        "--committed",
        default=None,
        help="committed bench JSON (default: ROOT/BENCH_gpusim.json or "
        "ROOT/BENCH_fleet.json per mode)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("IBFS_BENCH_TOLERANCE", "4.0")),
        help="allowed wall-clock ratio vs committed (env IBFS_BENCH_TOLERANCE)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="also run the serve section and compare its checksum",
    )
    parser.add_argument(
        "--elastic-only",
        action="store_true",
        help="fleet mode: run only the elastic + replication sections "
        "(IBFS_FLEET_SECTIONS=elastic) and gate just those",
    )
    args = parser.parse_args()
    if (
        args.binary is None
        and args.fleet_binary is None
        and args.partition_binary is None
    ):
        print(
            "check_bench: pass --binary, --fleet-binary, and/or "
            "--partition-binary"
        )
        return 2
    partition_rc = 0
    if args.partition_binary is not None:
        partition_rc = check_partition(args)
        if partition_rc == 2 or (
            args.binary is None and args.fleet_binary is None
        ):
            return partition_rc
    if args.binary is None:
        return check_fleet(args) or partition_rc
    fleet_rc = 0
    if args.fleet_binary is not None:
        fleet_rc = check_fleet(args)
        if fleet_rc == 2:
            return 2

    committed_path = args.committed or os.path.join(args.root, "BENCH_gpusim.json")
    try:
        committed = load_committed(committed_path)
    except OSError as e:
        print(f"check_bench: cannot read {committed_path}: {e}")
        return 2

    config = committed.get("config", {})
    env = dict(os.environ)
    # Reproduce the committed workload exactly; counters and sim seconds
    # are only comparable at an identical configuration.
    env["IBFS_GPUSIM_BENCH_SCALE"] = str(config.get("rmat_scale", 14))
    env["IBFS_GPUSIM_BENCH_EDGES"] = str(config.get("edge_factor", 16))
    env["IBFS_GPUSIM_BENCH_INSTANCES"] = str(config.get("instances", 256))
    env["IBFS_GPUSIM_BENCH_GROUP"] = str(config.get("group_size", 64))
    env["IBFS_GPUSIM_BENCH_REPEATS"] = "2"  # wall best-of only; counters exact
    env["IBFS_GPUSIM_BENCH_SERVE"] = "1" if args.serve else "0"
    env.pop("IBFS_GPUSIM_BENCH_BASELINE", None)

    with tempfile.TemporaryDirectory() as tmp:
        out_path = os.path.join(tmp, "bench.json")
        env["IBFS_GPUSIM_BENCH_OUT"] = out_path
        try:
            subprocess.run(
                [args.binary], env=env, check=True, stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT, timeout=600,
            )
        except (subprocess.SubprocessError, OSError) as e:
            print(f"check_bench: bench run failed: {e}")
            return 2
        with open(out_path, encoding="utf-8") as f:
            fresh = json.load(f)

    rc = 0
    for section, keys in EXACT_KEYS.items():
        for key in keys:
            want = committed.get(section, {}).get(key)
            got = fresh.get(section, {}).get(key)
            if want != got:
                rc = fail(
                    f"{section}.{key}: fresh {got!r} != committed {want!r} "
                    "(deterministic model output drifted)"
                )
    if args.serve:
        want = committed.get("serve", {}).get("checksum")
        got = fresh.get("serve", {}).get("checksum")
        if want != got:
            rc = fail(f"serve.checksum: fresh {got!r} != committed {want!r}")

    for section, key in WALL_KEYS.items():
        want = committed.get(section, {}).get(key)
        got = fresh.get(section, {}).get(key)
        if not want or not got:
            continue
        ratio = got / want
        status = "ok" if ratio <= args.tolerance else "REGRESSION"
        print(
            f"check_bench: {section}.{key}: {got:.4f}s vs committed "
            f"{want:.4f}s ({ratio:.2f}x, band {args.tolerance:.1f}x) {status}"
        )
        if ratio > args.tolerance:
            rc = fail(
                f"{section}.{key} {ratio:.2f}x over committed, "
                f"band {args.tolerance:.1f}x"
            )

    rc = rc or fleet_rc or partition_rc
    if rc == 0:
        print("check_bench: PASS")
    return rc


if __name__ == "__main__":
    sys.exit(main())
