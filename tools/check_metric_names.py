#!/usr/bin/env python3
"""Lints metric-name documentation coverage.

Every dotted metric name minted anywhere in src/ — a string literal passed
to MetricsRegistry::GetCounter / GetGauge / GetHistogram — must appear in
docs/OBSERVABILITY.md, so the doc's metric tables stay the single source
of truth for what the registry can emit. Run from anywhere:

    python3 tools/check_metric_names.py [repo_root]

Exits 0 when every name is documented, 1 with a per-name report otherwise.
"""

import pathlib
import re
import sys

GETTER_RE = re.compile(
    r'Get(?:Counter|Gauge|Histogram)\s*\(\s*"([^"]+)"')


def minted_names(src_dir: pathlib.Path) -> dict:
    """Maps metric name -> first "file:line" that mints it."""
    names = {}
    for path in sorted(src_dir.rglob("*.cc")) + sorted(src_dir.rglob("*.h")):
        text = path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in GETTER_RE.finditer(line):
                name = match.group(1)
                names.setdefault(name, f"{path}:{lineno}")
    return names


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    src = root / "src"
    doc = root / "docs" / "OBSERVABILITY.md"
    if not src.is_dir():
        print(f"check_metric_names: no src/ under {root}", file=sys.stderr)
        return 1
    if not doc.is_file():
        print(f"check_metric_names: missing {doc}", file=sys.stderr)
        return 1

    names = minted_names(src)
    doc_text = doc.read_text(encoding="utf-8")
    missing = {
        name: where for name, where in names.items() if name not in doc_text
    }
    if missing:
        print(
            f"check_metric_names: {len(missing)} metric name(s) minted in "
            f"src/ but absent from {doc}:",
            file=sys.stderr,
        )
        for name in sorted(missing):
            print(f"  {name}  (first minted at {missing[name]})",
                  file=sys.stderr)
        return 1
    print(f"check_metric_names: {len(names)} metric names all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
