// ibfs_cli — command-line driver for the iBFS library.
//
//   ibfs_cli generate --benchmark FB --out fb.bin
//   ibfs_cli generate --rmat-scale 12 --edge-factor 16 --out g.bin
//   ibfs_cli stats    --graph g.bin
//   ibfs_cli run      --graph g.bin --strategy bitwise --grouping groupby
//                     --instances 256 --profile
//   ibfs_cli cluster  --benchmark RD --gpus 16 --instances 2048
//   ibfs_cli run      --benchmark FB --trace-out t.json --report-out r.json
//   ibfs_cli serve    --benchmark PK --qps 500 --duration 2 --max-batch 64
//                     --max-delay-ms 2 --arrival poisson
//   ibfs_cli check    --trace t.json --report r.json
//
// Graphs are read/written in the binary CSR format (graph/io.h); the
// `--benchmark` flag generates one of the paper's 13 presets instead.
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include <fstream>
#include <iostream>

#include "core/cluster_engine.h"
#include "core/engine.h"
#include "core/observe.h"
#include "core/trace_io.h"
#include "core/validate.h"
#include "gen/benchmarks.h"
#include "gen/rmat.h"
#include "gen/uniform.h"
#include "gpusim/fault.h"
#include "gpusim/report.h"
#include "graph/components.h"
#include "graph/degree_stats.h"
#include "graph/io.h"
#include "obs/flight.h"
#include "obs/live.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "fleet/fleet.h"
#include "fleet/fleet_workload.h"
#include "service/chaos.h"
#include "service/service.h"
#include "service/workload.h"
#include "util/flags.h"

namespace ibfs {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: ibfs_cli "
               "<generate|stats|run|validate|traces|cluster|serve|chaos|"
               "fleet|check> [flags]\n"
               "  generate: --out PATH and one of --benchmark NAME |\n"
               "            --rmat-scale N [--edge-factor K] [--seed S] |\n"
               "            --uniform-vertices N [--outdegree K]\n"
               "  stats:    --graph PATH | --benchmark NAME\n"
               "  run:      --graph/--benchmark, --strategy "
               "sequential|naive|joint|bitwise,\n"
               "            --grouping inorder|random|groupby, --instances "
               "I, --group-size N,\n"
               "            [--q Q] [--no-early-termination] [--max-level "
               "K] [--profile]\n"
               "            [--threads T]  host worker threads (0 = one per "
               "hardware thread,\n"
               "            1 = serial; results are identical either way)\n"
               "  cluster:  run flags plus --gpus G [--lpt], or partitioned\n"
               "            execution: --partitions P\n"
               "            [--comm-model allgather|butterfly]\n"
               "            [--link-gbps B] [--link-us L]\n"
               "  serve:    run flags plus --qps Q --duration SECONDS\n"
               "            --max-batch N --max-delay-ms MS\n"
               "            --arrival poisson|bursty|uniform [--burst-size "
               "B]\n"
               "            (open-loop online serving; report via "
               "--report-out)\n"
               "            resilience: [--fault-spec SPEC] [--retries R]\n"
               "            [--deadline-ms MS] [--max-pending N]\n"
               "            [--breaker-threshold K] [--no-cpu-fallback]\n"
               "            caching: [--cache-mb MB] [--no-cache]\n"
               "            [--source-pool N]  restrict to N hot sources\n"
               "            live telemetry (serve and chaos):\n"
               "            [--access-log PATH]   per-query JSONL log\n"
               "            [--slo \"<class>:<ms>:<target>\"] latency SLO "
               "with\n"
               "            burn-rate alerts ([--slo-fast-s S] [--slo-slow-s "
               "S]\n"
               "            [--slo-burn X])\n"
               "            [--flight-out PATH]   flight-record dump on SLO "
               "breach,\n"
               "            breaker open, or quarantine "
               "([--flight-interval-s S])\n"
               "            [--live-out PATH]     periodic live snapshot "
               "JSON\n"
               "            [--prom-out PATH]     periodic Prometheus text "
               "file\n"
               "            [--live-interval-ms MS] [--live-window-s S]\n"
               "  chaos:    serve flags; injects --fault-spec, verifies "
               "every completed\n"
               "            query against a fault-free baseline, writes an\n"
               "            ibfs.resilience_report via --report-out; exits "
               "nonzero on\n"
               "            checksum mismatches. SPEC example:\n"
               "            \"seed=7,devices=4,p_fail=0.1,perm=1,"
               "straggle=2:8\"\n"
               "  fleet:    serve flags plus --shards N [--vnodes V]\n"
               "            [--ring-seed S] [--multi-source K]\n"
               "            [--shard-down I [--kill-at-s T]]\n"
               "            [--join-shards J [--join-at-s T] "
               "[--join-weight W]]\n"
               "            [--replication R [--hedge-delay-ms MS]]\n"
               "            [--rebalance-s T]\n"
               "            (N-shard scatter-gather fleet; verifies every "
               "answer\n"
               "            against the CPU baseline, writes an "
               "ibfs.fleet_report\n"
               "            via --report-out; exits nonzero on mismatches "
               "or\n"
               "            unanswered futures)\n"
               "  check:    --trace PATH | --report PATH | --metrics PATH |\n"
               "            --service-report PATH | --resilience-report "
               "PATH |\n"
               "            --fleet-report PATH | --flight-record PATH\n"
               "            (validate telemetry files)\n"
               "telemetry (run and cluster):\n"
               "  --trace-out PATH    Chrome trace-event JSON "
               "(chrome://tracing, Perfetto)\n"
               "  --metrics-out PATH  metrics snapshot JSON\n"
               "  --report-out PATH   machine-readable run report JSON\n");
  return 2;
}

// Telemetry sinks for one CLI invocation, driven by --trace-out,
// --metrics-out, and --report-out. The tracer is live only when a trace
// file was requested; metrics are live when either a metrics file or a
// report (which embeds the snapshot) was requested.
struct ObsSession {
  std::string trace_out;
  std::string metrics_out;
  std::string report_out;
  /// Set (before MakeObserver) by commands whose outputs need the registry
  /// even without --metrics-out/--report-out, e.g. serve --prom-out.
  bool force_metrics = false;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;

  explicit ObsSession(const Flags& flags)
      : trace_out(flags.GetString("trace-out")),
        metrics_out(flags.GetString("metrics-out")),
        report_out(flags.GetString("report-out")) {
    const int64_t cap = flags.GetInt("trace-max-events", 0);
    if (cap > 0) tracer.SetMaxEventsPerThread(static_cast<size_t>(cap));
  }

  bool want_metrics() const {
    return force_metrics || !metrics_out.empty() || !report_out.empty();
  }

  obs::Observer MakeObserver() {
    obs::Observer observer;
    if (!trace_out.empty()) observer.tracer = &tracer;
    if (want_metrics()) observer.metrics = &metrics;
    if (observer.tracer != nullptr && observer.metrics != nullptr) {
      // Ring-buffer overwrites in the tracer surface as a counter.
      tracer.SetDropCounter(metrics.GetCounter("trace.dropped_events"));
    }
    return observer;
  }

  // Writes the requested files; `report` may be null when the command has
  // no report to offer. Returns 0 on success, 1 on any write failure.
  int Flush(const char* command, const obs::RunReport* report) {
    int rc = 0;
    auto emit = [&](const Status& status, const std::string& path) {
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", command, status.ToString().c_str());
        rc = 1;
      } else {
        std::printf("wrote %s\n", path.c_str());
      }
    };
    if (!trace_out.empty()) emit(tracer.WriteFile(trace_out), trace_out);
    if (!metrics_out.empty()) {
      emit(metrics.WriteFile(metrics_out), metrics_out);
    }
    if (!report_out.empty() && report != nullptr) {
      emit(report->WriteFile(report_out, want_metrics() ? &metrics : nullptr),
           report_out);
    }
    return rc;
  }
};

// Live serving telemetry for serve/chaos, driven by --access-log, --slo,
// --flight-out, --live-out, and --prom-out. Owns the sinks the service
// writes through (they must outlive it) and the periodic exporter.
struct LiveSession {
  std::unique_ptr<obs::AccessLog> access_log;
  std::unique_ptr<obs::SloTracker> slo;
  std::unique_ptr<obs::FlightRecorder> flight;
  std::unique_ptr<obs::LiveExporter> exporter;
  std::string live_out;
  std::string prom_out;
  double interval_s = 0.25;

  // Parses the live flags into `service_options`' sink pointers. Must run
  // before session->MakeObserver(): a live/prom output forces the metrics
  // registry on.
  Status Setup(const Flags& flags, ObsSession* session,
               service::ServiceOptions* service_options) {
    const std::string access_path = flags.GetString("access-log");
    if (!access_path.empty()) {
      auto log = obs::AccessLog::Open(access_path);
      if (!log.ok()) return log.status();
      access_log = std::move(log.value());
      service_options->access_log = access_log.get();
    }
    const std::string slo_spec = flags.GetString("slo");
    if (!slo_spec.empty()) {
      auto spec = obs::SloSpec::Parse(slo_spec);
      if (!spec.ok()) return spec.status();
      obs::SloTracker::Options slo_options;
      slo_options.fast_window_s = flags.GetDouble("slo-fast-s", 60.0);
      slo_options.slow_window_s = flags.GetDouble("slo-slow-s", 600.0);
      slo_options.burn_threshold = flags.GetDouble("slo-burn", 2.0);
      slo = std::make_unique<obs::SloTracker>(spec.value(), slo_options);
      service_options->slo = slo.get();
    }
    const std::string flight_out = flags.GetString("flight-out");
    if (!flight_out.empty()) {
      obs::FlightRecorder::Options flight_options;
      flight_options.dump_path = flight_out;
      flight_options.min_dump_interval_s =
          flags.GetDouble("flight-interval-s", 5.0);
      flight = std::make_unique<obs::FlightRecorder>(flight_options);
      service_options->flight = flight.get();
    }
    service_options->live_window_s = flags.GetDouble("live-window-s", 10.0);
    live_out = flags.GetString("live-out");
    prom_out = flags.GetString("prom-out");
    interval_s = flags.GetDouble("live-interval-ms", 250.0) / 1e3;
    if (!live_out.empty() || !prom_out.empty()) {
      session->force_metrics = true;
    }
    return Status::OK();
  }

  // Starts the periodic publisher. `svc` may be null (chaos builds its
  // service internally): files still rewrite on the interval, only the
  // per-tick live-gauge refresh is skipped.
  void StartExporter(ObsSession* session, service::BfsService* svc) {
    if (live_out.empty() && prom_out.empty() && slo == nullptr) return;
    obs::LiveExporterOptions options;
    options.interval_s = interval_s;
    options.live_out = live_out;
    options.prom_out = prom_out;
    options.metrics_out = session->metrics_out;
    std::function<void(double)> on_tick;
    if (svc != nullptr) {
      on_tick = [svc](double) { svc->PublishLiveTelemetry(); };
    }
    exporter = std::make_unique<obs::LiveExporter>(
        options, &session->metrics, std::move(on_tick));
    exporter->Start();
  }

  // Final gauge refresh + last file rewrite, then the one-line summary.
  void Finish(const char* command, service::BfsService* svc) {
    if (svc != nullptr) svc->PublishLiveTelemetry();
    if (exporter != nullptr) {
      exporter->Stop();
      if (!live_out.empty()) std::printf("wrote %s\n", live_out.c_str());
      if (!prom_out.empty()) std::printf("wrote %s\n", prom_out.c_str());
    }
    if (access_log != nullptr) {
      std::printf("access log:      %lld queries\n",
                  static_cast<long long>(access_log->lines()));
    }
    if (slo != nullptr) {
      std::printf("slo %s: %lld good, %lld bad; alerts %lld fired, "
                  "%lld cleared%s\n",
                  slo->spec().ToString().c_str(),
                  static_cast<long long>(slo->good()),
                  static_cast<long long>(slo->bad()),
                  static_cast<long long>(slo->alerts_fired()),
                  static_cast<long long>(slo->alerts_cleared()),
                  slo->alert_active() ? " (ALERT ACTIVE)" : "");
    }
    if (flight != nullptr && flight->dumps() > 0) {
      std::printf("flight records:  %lld dumped to %s\n",
                  static_cast<long long>(flight->dumps()),
                  flight->options().dump_path.c_str());
    }
    (void)command;
  }
};

// Display label for the report: benchmark name when generated, else path.
std::string GraphLabel(const Flags& flags) {
  const std::string name = flags.GetString("benchmark");
  return name.empty() ? flags.GetString("graph") : name;
}

Result<graph::Csr> LoadGraphArg(const Flags& flags) {
  const std::string path = flags.GetString("graph");
  if (!path.empty()) return graph::LoadBinary(path);
  const std::string name = flags.GetString("benchmark");
  if (!name.empty()) {
    auto id = gen::BenchmarkByName(name);
    if (!id.has_value()) {
      return Status::InvalidArgument("unknown benchmark " + name);
    }
    return gen::GenerateBenchmark(
        *id, static_cast<int>(flags.GetInt("scale-delta", 0)));
  }
  return Status::InvalidArgument("need --graph PATH or --benchmark NAME");
}

Result<EngineOptions> OptionsFromFlags(const Flags& flags) {
  EngineOptions options;
  const std::string strategy = flags.GetString("strategy", "bitwise");
  if (strategy == "sequential") {
    options.strategy = Strategy::kSequential;
  } else if (strategy == "naive") {
    options.strategy = Strategy::kNaiveConcurrent;
  } else if (strategy == "joint") {
    options.strategy = Strategy::kJointTraversal;
  } else if (strategy == "bitwise") {
    options.strategy = Strategy::kBitwise;
  } else {
    return Status::InvalidArgument("unknown strategy " + strategy);
  }
  const std::string grouping = flags.GetString("grouping", "groupby");
  if (grouping == "inorder") {
    options.grouping = GroupingPolicy::kInOrder;
  } else if (grouping == "random") {
    options.grouping = GroupingPolicy::kRandom;
  } else if (grouping == "groupby") {
    options.grouping = GroupingPolicy::kGroupBy;
  } else {
    return Status::InvalidArgument("unknown grouping " + grouping);
  }
  options.group_size = static_cast<int>(flags.GetInt("group-size", 128));
  options.groupby.q = flags.GetInt("q", options.groupby.q);
  options.traversal.early_termination =
      !flags.GetBool("no-early-termination");
  options.traversal.max_level = static_cast<int>(
      flags.GetInt("max-level", TraversalOptions::kMaxTraversalLevel));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  options.keep_depths = false;
  options.traversal.collect_instance_stats = false;
  // Host worker threads for group execution; 0 = one per hardware thread.
  // Results are bit-identical at every setting (per-group devices, ordered
  // merge), so parallel is the safe default.
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  // Deterministic fault injection (run/serve/chaos): a fault-plan spec
  // string arms the injector; --retries adds attempts beyond the first.
  const std::string fault_spec = flags.GetString("fault-spec");
  if (!fault_spec.empty()) {
    Result<gpusim::FaultPlan> plan = gpusim::FaultPlan::Parse(fault_spec);
    if (!plan.ok()) return plan.status();
    options.faults = plan.value();
  }
  options.retry.max_attempts =
      1 + static_cast<int>(flags.GetInt(
              "retries", options.retry.max_attempts - 1));
  options.retry.seed = options.seed;
  return options;
}

// Shared by serve and chaos: the result/plan cache knobs. Default-on with
// a 64 MB budget; --no-cache restores the execute-everything behavior.
service::CacheOptions CacheFromFlags(const Flags& flags) {
  service::CacheOptions cache;
  cache.enabled = !flags.GetBool("no-cache");
  cache.result_budget_bytes = flags.GetInt("cache-mb", 64) << 20;
  return cache;
}

// Shared by serve and chaos: the service-level resilience knobs.
service::ResilienceOptions ResilienceFromFlags(const Flags& flags) {
  service::ResilienceOptions resilience;
  resilience.deadline_ms = flags.GetDouble("deadline-ms", 0.0);
  resilience.max_pending =
      static_cast<int>(flags.GetInt("max-pending", 0));
  resilience.breaker_threshold =
      static_cast<int>(flags.GetInt("breaker-threshold", 3));
  resilience.cpu_fallback = !flags.GetBool("no-cpu-fallback");
  return resilience;
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.GetString("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: missing --out PATH\n");
    return 2;
  }
  Result<graph::Csr> built = Status::InvalidArgument("no generator chosen");
  if (!flags.GetString("benchmark").empty()) {
    built = LoadGraphArg(flags);
  } else if (flags.Has("rmat-scale")) {
    gen::RmatParams params;
    params.scale = static_cast<int>(flags.GetInt("rmat-scale", 12));
    params.edge_factor = static_cast<int>(flags.GetInt("edge-factor", 16));
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    built = gen::GenerateRmat(params);
  } else if (flags.Has("uniform-vertices")) {
    gen::UniformParams params;
    params.vertex_count = flags.GetInt("uniform-vertices", 4096);
    params.outdegree = static_cast<int>(flags.GetInt("outdegree", 16));
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    built = gen::GenerateUniform(params);
  }
  if (!built.ok()) {
    std::fprintf(stderr, "generate: %s\n", built.status().ToString().c_str());
    return 1;
  }
  const Status saved = graph::SaveBinary(built.value(), out);
  if (!saved.ok()) {
    std::fprintf(stderr, "generate: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld vertices, %lld directed edges\n", out.c_str(),
              static_cast<long long>(built.value().vertex_count()),
              static_cast<long long>(built.value().edge_count()));
  return 0;
}

int CmdStats(const Flags& flags) {
  auto graph = LoadGraphArg(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "stats: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const auto stats = graph::ComputeDegreeStats(graph.value());
  const auto giant = graph::GiantComponent(graph.value());
  std::printf("vertices:        %lld\n",
              static_cast<long long>(stats.vertex_count));
  std::printf("directed edges:  %lld\n",
              static_cast<long long>(stats.edge_count));
  std::printf("avg outdegree:   %.2f\n", stats.avg_outdegree);
  std::printf("max outdegree:   %lld\n",
              static_cast<long long>(stats.max_outdegree));
  std::printf("degree stddev:   %.2f\n", stats.stddev_outdegree);
  std::printf("isolated:        %lld\n",
              static_cast<long long>(stats.zero_degree_count));
  std::printf("giant component: %zu vertices (%.1f%%)\n", giant.size(),
              100.0 * static_cast<double>(giant.size()) /
                  static_cast<double>(stats.vertex_count));
  const auto histogram = graph::DegreeHistogram(graph.value());
  std::printf("outdegree histogram (log2 buckets):\n");
  for (size_t b = 0; b < histogram.size(); ++b) {
    std::printf("  [%6lld, %6lld): %lld\n",
                static_cast<long long>(b == 0 ? 0 : int64_t{1} << b),
                static_cast<long long>(int64_t{1} << (b + 1)),
                static_cast<long long>(histogram[b]));
  }
  return 0;
}

int CmdRun(const Flags& flags) {
  auto graph = LoadGraphArg(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "run: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto options = OptionsFromFlags(flags);
  if (!options.ok()) {
    std::fprintf(stderr, "run: %s\n", options.status().ToString().c_str());
    return 1;
  }
  const int64_t instances = flags.GetInt("instances", 128);
  const auto sources = graph::SampleConnectedSources(
      graph.value(), instances,
      static_cast<uint64_t>(flags.GetInt("seed", 1)));
  ObsSession session(flags);
  EngineOptions opts = options.value();
  opts.observer = session.MakeObserver();
  Engine engine(&graph.value(), opts);
  auto result = engine.Run(sources);
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const EngineResult& res = result.value();
  std::printf("instances:       %lld in %zu groups\n",
              static_cast<long long>(instances), res.groups.size());
  std::printf("simulated time:  %.3f ms\n", res.sim_seconds * 1e3);
  std::printf("traversal rate:  %.2f GTEPS\n", res.teps / 1e9);
  std::printf("sharing ratio:   %.1f%% (td %.1f%%, bu %.1f%%)\n",
              100.0 * res.SharingRatio(), 100.0 * res.SharingRatio(0),
              100.0 * res.SharingRatio(1));
  if (flags.GetBool("profile")) {
    gpusim::KernelStats totals = res.totals;
    std::printf("%s", gpusim::FormatProfile(res.phases, totals,
                                            res.sim_seconds)
                          .c_str());
  }
  const obs::RunReport report = BuildRunReport(
      GraphLabel(flags), graph.value(), opts, instances, res);
  return session.Flush("run", &report);
}

// Runs concurrent BFS and validates every instance's depths with the
// Graph500-style structural checks.
int CmdValidate(const Flags& flags) {
  auto graph = LoadGraphArg(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "validate: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  auto options = OptionsFromFlags(flags);
  if (!options.ok()) {
    std::fprintf(stderr, "validate: %s\n",
                 options.status().ToString().c_str());
    return 1;
  }
  EngineOptions opts = options.value();
  opts.keep_depths = true;
  const int64_t instances = flags.GetInt("instances", 64);
  const auto sources = graph::SampleConnectedSources(
      graph.value(), instances,
      static_cast<uint64_t>(flags.GetInt("seed", 1)));
  Engine engine(&graph.value(), opts);
  auto result = engine.Run(sources);
  if (!result.ok()) {
    std::fprintf(stderr, "validate: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  int64_t checked = 0;
  for (size_t g = 0; g < result.value().groups.size(); ++g) {
    for (size_t j = 0; j < result.value().group_sources[g].size(); ++j) {
      const Status st = ValidateBfsDepths(
          graph.value(), result.value().group_sources[g][j],
          result.value().groups[g].depths[j], opts.traversal.max_level);
      if (!st.ok()) {
        std::fprintf(stderr, "validate: instance %lld FAILED: %s\n",
                     static_cast<long long>(checked),
                     st.ToString().c_str());
        return 1;
      }
      ++checked;
    }
  }
  std::printf("validated %lld BFS instances: all OK\n",
              static_cast<long long>(checked));
  return 0;
}

// Runs concurrent BFS and writes per-level traces as CSV (stdout or
// --out FILE) for offline plotting.
int CmdTraces(const Flags& flags) {
  auto graph = LoadGraphArg(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "traces: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto options = OptionsFromFlags(flags);
  if (!options.ok()) {
    std::fprintf(stderr, "traces: %s\n",
                 options.status().ToString().c_str());
    return 1;
  }
  EngineOptions opts = options.value();
  opts.traversal.collect_instance_stats = true;
  const int64_t instances = flags.GetInt("instances", 128);
  const auto sources = graph::SampleConnectedSources(
      graph.value(), instances,
      static_cast<uint64_t>(flags.GetInt("seed", 1)));
  Engine engine(&graph.value(), opts);
  auto result = engine.Run(sources);
  if (!result.ok()) {
    std::fprintf(stderr, "traces: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const std::string out_path = flags.GetString("out");
  if (out_path.empty()) {
    WriteLevelTracesCsv(result.value(), std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "traces: cannot open %s\n", out_path.c_str());
      return 1;
    }
    WriteLevelTracesCsv(result.value(), out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int CmdCluster(const Flags& flags) {
  auto graph = LoadGraphArg(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "cluster: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto options = OptionsFromFlags(flags);
  if (!options.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 options.status().ToString().c_str());
    return 1;
  }
  const int64_t instances = flags.GetInt("instances", 1024);
  const int gpus = static_cast<int>(flags.GetInt("gpus", 4));
  const auto policy = flags.GetBool("lpt")
                          ? gpusim::PlacementPolicy::kLpt
                          : gpusim::PlacementPolicy::kRoundRobin;
  const auto sources = graph::SampleConnectedSources(
      graph.value(), instances,
      static_cast<uint64_t>(flags.GetInt("seed", 1)));
  ObsSession session(flags);
  EngineOptions opts = options.value();
  opts.observer = session.MakeObserver();

  // --partitions switches to the 1D edge-partitioned path: the graph is
  // spread over P devices and every BFS level ends in a modeled frontier
  // exchange, instead of placing whole (independent) groups onto GPUs.
  const int partitions = static_cast<int>(flags.GetInt("partitions", 0));
  if (partitions > 0) {
    PartitionRunOptions prun;
    prun.partitions = partitions;
    const std::string comm_model = flags.GetString("comm-model", "allgather");
    if (comm_model == "allgather") {
      prun.schedule = gpusim::CommSchedule::kAllGather;
    } else if (comm_model == "butterfly") {
      prun.schedule = gpusim::CommSchedule::kButterfly;
    } else {
      std::fprintf(stderr, "cluster: unknown --comm-model %s\n",
                   comm_model.c_str());
      return 1;
    }
    prun.link_gbps = flags.GetDouble("link-gbps", 0.0);
    prun.link_us = flags.GetDouble("link-us", -1.0);
    auto part_result = RunPartitioned(graph.value(), sources, opts, prun);
    if (!part_result.ok()) {
      std::fprintf(stderr, "cluster: %s\n",
                   part_result.status().ToString().c_str());
      return 1;
    }
    const PartitionedRunResult& res = part_result.value();
    std::printf("partitions:      %d (%s, %.1f GB/s, %.1f us)\n",
                res.partitions, gpusim::CommScheduleName(res.schedule),
                res.link.bandwidth_gbps, res.link.latency_us);
    std::printf("edge imbalance:  %.3f\n", res.edge_imbalance);
    std::printf("compute time:    %.3f ms\n", res.compute_seconds * 1e3);
    std::printf("comm time:       %.3f ms (%lld supersteps, %lld rounds)\n",
                res.comm_seconds * 1e3,
                static_cast<long long>(res.supersteps),
                static_cast<long long>(res.comm_rounds));
    std::printf("bytes on wire:   %lld\n",
                static_cast<long long>(res.bytes_on_wire));
    std::printf("total time:      %.3f ms\n", res.sim_seconds * 1e3);
    std::printf("aggregate rate:  %.2f GTEPS\n", res.teps / 1e9);
    obs::RunReport report = BuildPartitionedRunReport(
        GraphLabel(flags), graph.value(), opts, instances, res);
    AttachPartitionSection(res, &report);
    return session.Flush("cluster", &report);
  }

  auto result = RunOnCluster(graph.value(), sources, opts, gpus, policy);
  if (!result.ok()) {
    std::fprintf(stderr, "cluster: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const ClusterRunResult& res = result.value();
  std::printf("groups:          %lld\n",
              static_cast<long long>(res.group_count));
  std::printf("1-GPU time:      %.3f ms\n",
              res.single_device_seconds * 1e3);
  std::printf("%d-GPU makespan: %.3f ms\n", gpus,
              res.schedule.makespan_seconds * 1e3);
  std::printf("speedup:         %.2fx\n", res.speedup);
  std::printf("aggregate rate:  %.2f GTEPS\n", res.teps / 1e9);
  obs::RunReport report = BuildRunReport(GraphLabel(flags), graph.value(),
                                         opts, instances, res.engine);
  AttachClusterSection(res, policy, &report);
  return session.Flush("cluster", &report);
}

// Online serving: generates an open-loop workload, drives it through a
// BfsService, and reports the latency/throughput/sharing SLOs.
int CmdServe(const Flags& flags) {
  auto graph = LoadGraphArg(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "serve: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto engine_options = OptionsFromFlags(flags);
  if (!engine_options.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 engine_options.status().ToString().c_str());
    return 1;
  }

  service::WorkloadOptions workload;
  const std::string arrival = flags.GetString("arrival", "poisson");
  const auto parsed = service::ParseArrivalProcess(arrival);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "serve: unknown arrival process %s\n",
                 arrival.c_str());
    return 1;
  }
  workload.arrival = *parsed;
  workload.qps = flags.GetDouble("qps", 200.0);
  workload.duration_s = flags.GetDouble("duration", 1.0);
  workload.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  workload.burst_size = static_cast<int>(flags.GetInt("burst-size", 16));
  workload.source_pool = flags.GetInt("source-pool", 0);
  auto events = service::GenerateArrivals(graph.value(), workload);
  if (!events.ok()) {
    std::fprintf(stderr, "serve: %s\n", events.status().ToString().c_str());
    return 1;
  }

  ObsSession session(flags);
  service::ServiceOptions service_options;
  service_options.max_batch =
      static_cast<int>(flags.GetInt("max-batch", 64));
  service_options.max_delay_ms = flags.GetDouble("max-delay-ms", 2.0);
  service_options.execute_threads =
      static_cast<int>(flags.GetInt("threads", 0));
  service_options.keep_depths = false;  // checksums suffice for the CLI
  service_options.engine = engine_options.value();
  service_options.resilience = ResilienceFromFlags(flags);
  service_options.cache = CacheFromFlags(flags);
  LiveSession live;
  const Status live_setup = live.Setup(flags, &session, &service_options);
  if (!live_setup.ok()) {
    std::fprintf(stderr, "serve: %s\n", live_setup.ToString().c_str());
    return 1;
  }
  service_options.observer = session.MakeObserver();
  auto svc = service::BfsService::Create(&graph.value(), service_options);
  if (!svc.ok()) {
    std::fprintf(stderr, "serve: %s\n", svc.status().ToString().c_str());
    return 1;
  }
  live.StartExporter(&session, svc.value().get());
  auto drive = service::DriveWorkload(svc.value().get(), events.value());
  if (!drive.ok()) {
    std::fprintf(stderr, "serve: %s\n", drive.status().ToString().c_str());
    return 1;
  }
  live.Finish("serve", svc.value().get());
  auto oracle = service::OracleSharingRatio(
      graph.value(), engine_options.value(), events.value());
  if (!oracle.ok()) {
    std::fprintf(stderr, "serve: %s\n", oracle.status().ToString().c_str());
    return 1;
  }

  const obs::ServiceReport report = service::BuildServiceReport(
      GraphLabel(flags), graph.value(), service_options, workload,
      drive.value(), oracle.value());
  std::printf("queries:         %lld (%lld ok, %lld failed)\n",
              static_cast<long long>(report.queries),
              static_cast<long long>(report.completed),
              static_cast<long long>(report.failed));
  std::printf("offered load:    %.1f qps for %.2f s (%s)\n",
              report.offered_qps, report.duration_seconds,
              report.arrival.c_str());
  std::printf("achieved:        %.1f qps over %.2f s wall\n",
              report.achieved_qps, report.wall_seconds);
  std::printf("batches:         %lld (mean size %.1f; closes: %lld size, "
              "%lld deadline, %lld shutdown)\n",
              static_cast<long long>(report.batches),
              report.mean_batch_size,
              static_cast<long long>(report.size_closes),
              static_cast<long long>(report.deadline_closes),
              static_cast<long long>(report.shutdown_closes));
  std::printf("latency (total): p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
              report.total_ms.p50, report.total_ms.p95, report.total_ms.p99);
  std::printf("latency (queue): p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
              report.queue_ms.p50, report.queue_ms.p95, report.queue_ms.p99);
  std::printf("sharing ratio:   %.1f%% (oracle %.1f%%, fraction %.1f%%)\n",
              100.0 * report.sharing_ratio,
              100.0 * report.oracle_sharing_ratio,
              100.0 * report.sharing_fraction);
  std::printf("traversal rate:  %.2f GTEPS\n", report.teps / 1e9);
  if (report.cache_enabled) {
    std::printf("cache:           %lld hits / %lld misses (%.1f%%), "
                "%lld quarantined, %.1f MB resident; plans %lld/%lld\n",
                static_cast<long long>(report.cache_hits),
                static_cast<long long>(report.cache_misses),
                100.0 * report.cache_hit_ratio,
                static_cast<long long>(report.cache_quarantined),
                static_cast<double>(report.cache_bytes_resident) / 1048576.0,
                static_cast<long long>(report.plan_hits),
                static_cast<long long>(report.plan_misses));
  }
  const service::BfsService::Stats& stats = drive.value().stats;
  if (service_options.engine.faults.enabled() || stats.shed > 0 ||
      stats.deadline_exceeded > 0) {
    std::printf("resilience:      %lld shed, %lld deadline, %lld degraded, "
                "%lld retries, %lld faults, %lld corrupt, %lld breakers\n",
                static_cast<long long>(stats.shed),
                static_cast<long long>(stats.deadline_exceeded),
                static_cast<long long>(stats.degraded),
                static_cast<long long>(stats.retries),
                static_cast<long long>(stats.transient_faults),
                static_cast<long long>(stats.corruptions_detected),
                static_cast<long long>(stats.breaker_opened));
  }

  // The service report has its own schema, so write it directly and use
  // Flush only for the trace/metrics sinks.
  int rc = session.Flush("serve", nullptr);
  if (!session.report_out.empty()) {
    const Status written = report.WriteFile(
        session.report_out,
        session.want_metrics() ? &session.metrics : nullptr);
    if (!written.ok()) {
      std::fprintf(stderr, "serve: %s\n", written.ToString().c_str());
      rc = 1;
    } else {
      std::printf("wrote %s\n", session.report_out.c_str());
    }
  }
  return rc;
}

// Chaos run: same open-loop workload as `serve`, but with the fault plan
// armed, and every completed query's depth checksum verified against a
// fault-free baseline. Exit 1 on any mismatch — resilience must never
// trade away correctness.
int CmdChaos(const Flags& flags) {
  auto graph = LoadGraphArg(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "chaos: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto engine_options = OptionsFromFlags(flags);
  if (!engine_options.ok()) {
    std::fprintf(stderr, "chaos: %s\n",
                 engine_options.status().ToString().c_str());
    return 1;
  }

  service::ChaosOptions chaos;
  const std::string arrival = flags.GetString("arrival", "poisson");
  const auto parsed = service::ParseArrivalProcess(arrival);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "chaos: unknown arrival process %s\n",
                 arrival.c_str());
    return 1;
  }
  chaos.workload.arrival = *parsed;
  chaos.workload.qps = flags.GetDouble("qps", 200.0);
  chaos.workload.duration_s = flags.GetDouble("duration", 1.0);
  chaos.workload.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  chaos.workload.burst_size =
      static_cast<int>(flags.GetInt("burst-size", 16));
  chaos.workload.source_pool = flags.GetInt("source-pool", 0);

  ObsSession session(flags);
  chaos.service.max_batch = static_cast<int>(flags.GetInt("max-batch", 64));
  chaos.service.max_delay_ms = flags.GetDouble("max-delay-ms", 2.0);
  chaos.service.execute_threads =
      static_cast<int>(flags.GetInt("threads", 0));
  chaos.service.keep_depths = false;  // the checksum is the verdict
  chaos.service.engine = engine_options.value();
  chaos.service.resilience = ResilienceFromFlags(flags);
  chaos.service.cache = CacheFromFlags(flags);
  LiveSession live;
  const Status live_setup = live.Setup(flags, &session, &chaos.service);
  if (!live_setup.ok()) {
    std::fprintf(stderr, "chaos: %s\n", live_setup.ToString().c_str());
    return 1;
  }
  chaos.service.observer = session.MakeObserver();

  // RunChaos builds its service internally, so the exporter only rewrites
  // the metrics/live files on the interval; the sinks above still see
  // every completion because chaos.service carries the pointers.
  live.StartExporter(&session, nullptr);
  auto run = service::RunChaos(GraphLabel(flags), graph.value(), chaos);
  live.Finish("chaos", nullptr);
  if (!run.ok()) {
    std::fprintf(stderr, "chaos: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const obs::ResilienceReport& report = run.value();
  std::printf("fault plan:      %s\n", report.fault_spec.c_str());
  std::printf("queries:         %lld (%lld ok, %lld failed, %lld deadline, "
              "%lld shed)\n",
              static_cast<long long>(report.queries),
              static_cast<long long>(report.completed),
              static_cast<long long>(report.failed),
              static_cast<long long>(report.deadline_exceeded),
              static_cast<long long>(report.shed));
  std::printf("recovery:        %lld retries, %lld transient faults, "
              "%lld corruptions caught, %lld breakers opened\n",
              static_cast<long long>(report.retries),
              static_cast<long long>(report.transient_faults),
              static_cast<long long>(report.corruptions_detected),
              static_cast<long long>(report.breaker_opened));
  std::printf("degraded:        %lld queries via %lld CPU-fallback groups\n",
              static_cast<long long>(report.degraded),
              static_cast<long long>(report.fallback_groups));
  std::printf("verification:    %lld checksums compared, %lld mismatches\n",
              static_cast<long long>(report.checksums_compared),
              static_cast<long long>(report.checksum_mismatches));

  int rc = session.Flush("chaos", nullptr);
  if (!session.report_out.empty()) {
    const Status written = report.WriteFile(
        session.report_out,
        session.want_metrics() ? &session.metrics : nullptr);
    if (!written.ok()) {
      std::fprintf(stderr, "chaos: %s\n", written.ToString().c_str());
      rc = 1;
    } else {
      std::printf("wrote %s\n", session.report_out.c_str());
    }
  }
  if (report.checksum_mismatches > 0) {
    std::fprintf(stderr,
                 "chaos: FAILED — %lld completed queries returned depths "
                 "different from the fault-free baseline\n",
                 static_cast<long long>(report.checksum_mismatches));
    rc = 1;
  }
  return rc;
}

// Distributed fleet run: N shared-nothing BfsService shards behind the
// consistent-hash scatter-gather front door, driven with the same
// open-loop workload as `serve`. Every completed answer is verified
// against the fault-free CPU baseline (depth checksums are a pure
// function of the graph, so N shards must answer bit-identically to
// one), and --shard-down rehearses losing a shard mid-drive. Exit 1 on
// any mismatch or unanswered future.
int CmdFleet(const Flags& flags) {
  auto graph = LoadGraphArg(flags);
  if (!graph.ok()) {
    std::fprintf(stderr, "fleet: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto engine_options = OptionsFromFlags(flags);
  if (!engine_options.ok()) {
    std::fprintf(stderr, "fleet: %s\n",
                 engine_options.status().ToString().c_str());
    return 1;
  }

  fleet::FleetWorkloadOptions workload;
  const std::string arrival = flags.GetString("arrival", "poisson");
  const auto parsed = service::ParseArrivalProcess(arrival);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "fleet: unknown arrival process %s\n",
                 arrival.c_str());
    return 1;
  }
  workload.workload.arrival = *parsed;
  workload.workload.qps = flags.GetDouble("qps", 200.0);
  workload.workload.duration_s = flags.GetDouble("duration", 1.0);
  workload.workload.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  workload.workload.burst_size =
      static_cast<int>(flags.GetInt("burst-size", 16));
  workload.workload.source_pool = flags.GetInt("source-pool", 0);
  workload.multi_source =
      static_cast<int>(flags.GetInt("multi-source", 1));
  workload.kill_shard = static_cast<int>(flags.GetInt("shard-down", -1));
  workload.kill_at_s = flags.GetDouble("kill-at-s", -1.0);
  workload.join_shards = static_cast<int>(flags.GetInt("join-shards", 0));
  workload.join_at_s = flags.GetDouble("join-at-s", -1.0);
  workload.join_weight = static_cast<int>(flags.GetInt("join-weight", 1));

  ObsSession session(flags);
  fleet::FleetOptions fleet_options;
  fleet_options.shards = static_cast<int>(flags.GetInt("shards", 4));
  fleet_options.vnodes = static_cast<int>(flags.GetInt("vnodes", 128));
  fleet_options.ring_seed =
      static_cast<uint64_t>(flags.GetInt("ring-seed", 2016));
  fleet_options.service.max_batch =
      static_cast<int>(flags.GetInt("max-batch", 64));
  fleet_options.service.max_delay_ms = flags.GetDouble("max-delay-ms", 2.0);
  fleet_options.service.execute_threads =
      static_cast<int>(flags.GetInt("threads", 0));
  fleet_options.service.keep_depths = false;  // the checksum is the verdict
  fleet_options.service.engine = engine_options.value();
  fleet_options.service.resilience = ResilienceFromFlags(flags);
  fleet_options.service.cache = CacheFromFlags(flags);
  fleet_options.cpu_fallback = !flags.GetBool("no-cpu-fallback");
  fleet_options.replication =
      static_cast<int>(flags.GetInt("replication", 1));
  fleet_options.hedge_delay_ms = flags.GetDouble("hedge-delay-ms", -1.0);
  fleet_options.rebalance_interval_s = flags.GetDouble("rebalance-s", 0.0);
  fleet_options.service.observer = session.MakeObserver();

  auto run = fleet::RunFleetChaos(GraphLabel(flags), graph.value(),
                                  fleet_options, workload);
  if (!run.ok()) {
    std::fprintf(stderr, "fleet: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const obs::FleetReport& report = run.value();
  std::printf("fleet:           %d shards, %d vnodes, ring seed %lld\n",
              report.shards, report.vnodes,
              static_cast<long long>(report.ring_seed));
  std::printf("queries:         %lld (%lld ok, %lld failed)\n",
              static_cast<long long>(report.queries),
              static_cast<long long>(report.completed),
              static_cast<long long>(report.failed));
  if (report.multi_source > 1) {
    std::printf("scatter-gather:  %lld multi-queries of up to %d sources\n",
                static_cast<long long>(report.multi_queries),
                report.multi_source);
  }
  std::printf("achieved:        %.1f qps over %.2f s wall\n",
              report.achieved_qps, report.wall_seconds);
  std::printf("latency (total): p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
              report.total_ms.p50, report.total_ms.p95, report.total_ms.p99);
  std::printf("routing:         imbalance %.2f, %lld failover reroutes, "
              "%lld CPU-fallback answers\n",
              report.imbalance,
              static_cast<long long>(report.failover_reroutes),
              static_cast<long long>(report.fallback_answers));
  std::printf("health:          %d healthy, %d degraded, %d down%s\n",
              static_cast<int>(report.healthy),
              static_cast<int>(report.degraded),
              static_cast<int>(report.down),
              report.killed_shard >= 0 ? " (one killed mid-run)" : "");
  if (report.joined_shards > 0 || report.replication > 1 ||
      report.rebalance_runs > 0) {
    std::printf("elasticity:      %lld joins (%lld warmup entries), "
                "R=%lld, %lld recoveries\n",
                static_cast<long long>(report.shard_joins),
                static_cast<long long>(report.warmup_entries),
                static_cast<long long>(report.replication),
                static_cast<long long>(report.recoveries));
  }
  if (report.replication > 1) {
    std::printf("hedging:         %lld fired, %lld won, %lld cancelled, "
                "%lld replica mismatches\n",
                static_cast<long long>(report.hedges_fired),
                static_cast<long long>(report.hedges_won),
                static_cast<long long>(report.hedges_cancelled),
                static_cast<long long>(report.replica_mismatches));
  }
  if (report.rebalance_runs > 0) {
    std::printf("rebalancing:     %lld runs, %lld weight changes\n",
                static_cast<long long>(report.rebalance_runs),
                static_cast<long long>(report.weight_changes));
  }
  std::printf("verification:    %lld checksums compared, %lld mismatches, "
              "%lld unanswered\n",
              static_cast<long long>(report.checksums_compared),
              static_cast<long long>(report.checksum_mismatches),
              static_cast<long long>(report.unanswered));

  int rc = session.Flush("fleet", nullptr);
  if (!session.report_out.empty()) {
    const Status written = report.WriteFile(
        session.report_out,
        session.want_metrics() ? &session.metrics : nullptr);
    if (!written.ok()) {
      std::fprintf(stderr, "fleet: %s\n", written.ToString().c_str());
      rc = 1;
    } else {
      std::printf("wrote %s\n", session.report_out.c_str());
    }
  }
  if (report.checksum_mismatches > 0) {
    std::fprintf(stderr,
                 "fleet: FAILED — %lld completed queries returned depths "
                 "different from the single-service baseline\n",
                 static_cast<long long>(report.checksum_mismatches));
    rc = 1;
  }
  if (report.unanswered > 0) {
    std::fprintf(stderr,
                 "fleet: FAILED — %lld futures never resolved\n",
                 static_cast<long long>(report.unanswered));
    rc = 1;
  }
  return rc;
}

// Validates telemetry files written by `run`/`cluster` (or anything else
// claiming the formats) without external tooling.
int CmdCheck(const Flags& flags) {
  int checked = 0;
  int rc = 0;
  auto check = [&](const char* kind, const std::string& path,
                   const Status& status) {
    ++checked;
    if (status.ok()) {
      std::printf("%s OK: %s\n", kind, path.c_str());
    } else {
      std::fprintf(stderr, "check: %s %s: %s\n", kind, path.c_str(),
                   status.ToString().c_str());
      rc = 1;
    }
  };
  const std::string trace = flags.GetString("trace");
  if (!trace.empty()) {
    check("trace", trace,
          obs::ValidateTraceFile(trace, flags.GetBool("require-spans")));
  }
  const std::string report = flags.GetString("report");
  if (!report.empty()) {
    check("report", report, obs::ValidateRunReportFile(report));
  }
  const std::string metrics = flags.GetString("metrics");
  if (!metrics.empty()) {
    check("metrics", metrics, obs::ValidateMetricsFile(metrics));
  }
  const std::string service_report = flags.GetString("service-report");
  if (!service_report.empty()) {
    check("service-report", service_report,
          obs::ValidateServiceReportFile(service_report));
  }
  const std::string resilience_report =
      flags.GetString("resilience-report");
  if (!resilience_report.empty()) {
    check("resilience-report", resilience_report,
          obs::ValidateResilienceReportFile(resilience_report));
  }
  const std::string fleet_report = flags.GetString("fleet-report");
  if (!fleet_report.empty()) {
    check("fleet-report", fleet_report,
          obs::ValidateFleetReportFile(fleet_report));
  }
  const std::string flight_record = flags.GetString("flight-record");
  if (!flight_record.empty()) {
    check("flight-record", flight_record,
          obs::ValidateFlightRecordFile(flight_record));
  }
  if (checked == 0) {
    std::fprintf(stderr,
                 "check: nothing to do; pass --trace, --report, "
                 "--metrics, --service-report, --resilience-report, "
                 "--fleet-report, and/or --flight-record\n");
    return 2;
  }
  return rc;
}

int Main(int argc, const char* const* argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok() || flags.value().positional().empty()) return Usage();
  const std::string command = flags.value().positional().front();
  if (command == "generate") return CmdGenerate(flags.value());
  if (command == "stats") return CmdStats(flags.value());
  if (command == "run") return CmdRun(flags.value());
  if (command == "validate") return CmdValidate(flags.value());
  if (command == "traces") return CmdTraces(flags.value());
  if (command == "cluster") return CmdCluster(flags.value());
  if (command == "serve") return CmdServe(flags.value());
  if (command == "chaos") return CmdChaos(flags.value());
  if (command == "fleet") return CmdFleet(flags.value());
  if (command == "check") return CmdCheck(flags.value());
  return Usage();
}

}  // namespace
}  // namespace ibfs

int main(int argc, char** argv) { return ibfs::Main(argc, argv); }
