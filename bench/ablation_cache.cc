// Ablation: the shared-memory adjacency cache (Section 4) on/off. With the
// cache, a joint frontier's neighbor list is loaded from global memory
// once and served to every instance; without it each active instance
// reloads the list.
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Ablation", "shared-memory adjacency cache on/off (joint)");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "cache_GTEPS", "nocache_GTEPS", "gain_x",
                  "loads_saved_pct"});
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    auto run = [&](bool cache) {
      EngineOptions options =
          BaseOptions(Strategy::kJointTraversal, GroupingPolicy::kGroupBy);
      options.traversal.adjacency_cache = cache;
      return MustRun(lg.graph, options, sources);
    };
    const EngineResult on = run(true);
    const EngineResult off = run(false);
    table.Row()
        .Add(lg.name)
        .Add(ToBillions(on.teps), 2)
        .Add(ToBillions(off.teps), 2)
        .Add(on.teps / off.teps, 2)
        .Add(100.0 * (1.0 -
                      static_cast<double>(on.totals.mem.load_transactions) /
                          static_cast<double>(
                              off.totals.mem.load_transactions)),
             1);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
