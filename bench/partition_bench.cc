// 1D-partitioned execution bench, one BENCH_partition.json:
//
// The same concurrent-BFS workload run unpartitioned (the baseline
// Engine) and partitioned across P = {1, 2, 4, 8} simulated devices under
// both frontier-exchange schedules. Three invariants are gated by
// tools/check_bench.py (ctest label bench_smoke):
//
// 1. Correctness: every point's depth checksum is bit-identical to the
//    baseline's — partitioning moves edges between devices, never
//    answers. -> "checksum_match" per point.
// 2. Comm model shape: under the ring all-gather, modeled comm seconds
//    grow monotonically with P (more ranks, more rounds); at P >= 4 the
//    butterfly beats the all-gather on the same byte volume (fewer
//    latency-bound rounds). Both schedules report identical
//    bytes_on_wire.
// 3. Wall clock stays within the tolerance band of the committed run
//    (machine-dependent, generous band).
//
// Environment knobs: IBFS_GRAPH (default PK), IBFS_PARTITION_INSTANCES
// (default 64), IBFS_PARTITION_GROUP (default 32), IBFS_BENCH_OUT
// (default BENCH_partition.json).
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/cluster_engine.h"
#include "gpusim/memory_model.h"
#include "obs/json.h"
#include "util/checksum.h"

namespace ibfs::bench {
namespace {

struct Point {
  int partitions = 0;
  const char* schedule = "";
  bool checksum_match = false;
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;
  double sim_seconds = 0.0;
  int64_t bytes_on_wire = 0;
  int64_t rounds = 0;
  int64_t supersteps = 0;
  double edge_imbalance = 0.0;
  double wall_seconds = 0.0;
};

void WriteHex(obs::JsonWriter* w, uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, value);
  w->String(buf);
}

int Main() {
  PrintHeader("partition bench",
              "1D edge-partitioned execution vs the single-device engine");
  const std::string graph_name = EnvString("IBFS_GRAPH", "PK");
  std::vector<LoadedGraph> loaded_set =
      LoadNamed(std::vector<std::string>{graph_name});
  const LoadedGraph& loaded = loaded_set.front();

  const int64_t instances = EnvInt64("IBFS_PARTITION_INSTANCES", 64);
  EngineOptions options = BaseOptions(Strategy::kBitwise,
                                      GroupingPolicy::kGroupBy);
  options.group_size = EnvInt("IBFS_PARTITION_GROUP", 32);
  options.traversal.collect_instance_stats = false;
  // BaseOptions drops depths (benches usually only need timing); parity
  // gating folds every depth vector, so keep them.
  options.keep_depths = true;
  const std::vector<graph::VertexId> sources =
      Sources(loaded.graph, instances);

  Engine engine(&loaded.graph, options);
  auto baseline = engine.Run(sources);
  IBFS_CHECK(baseline.ok()) << baseline.status().ToString();
  const uint64_t baseline_checksum = DepthChecksum(baseline.value().groups);
  std::printf("baseline: %zu groups, sim %.3f ms, checksum 0x%016" PRIx64
              "\n\n",
              baseline.value().groups.size(),
              baseline.value().sim_seconds * 1e3, baseline_checksum);

  std::printf("%4s %10s %12s %12s %14s %8s %6s %6s\n", "P", "schedule",
              "compute ms", "comm ms", "bytes", "rounds", "imbal", "match");
  std::vector<Point> points;
  for (int partitions : {1, 2, 4, 8}) {
    for (auto schedule : {gpusim::CommSchedule::kAllGather,
                          gpusim::CommSchedule::kButterfly}) {
      // P=1 has no exchange at all; one point covers both schedules.
      if (partitions == 1 &&
          schedule == gpusim::CommSchedule::kButterfly) {
        continue;
      }
      PartitionRunOptions prun;
      prun.partitions = partitions;
      prun.schedule = schedule;
      auto run = RunPartitioned(loaded.graph, sources, options, prun);
      IBFS_CHECK(run.ok()) << run.status().ToString();
      const PartitionedRunResult& res = run.value();
      Point point;
      point.partitions = partitions;
      point.schedule = gpusim::CommScheduleName(schedule);
      point.checksum_match =
          DepthChecksum(res.groups) == baseline_checksum;
      point.compute_seconds = res.compute_seconds;
      point.comm_seconds = res.comm_seconds;
      point.sim_seconds = res.sim_seconds;
      point.bytes_on_wire = res.bytes_on_wire;
      point.rounds = res.comm_rounds;
      point.supersteps = res.supersteps;
      point.edge_imbalance = res.edge_imbalance;
      point.wall_seconds = res.wall_seconds;
      std::printf("%4d %10s %12.3f %12.3f %14lld %8lld %6.3f %6s\n",
                  partitions, point.schedule, res.compute_seconds * 1e3,
                  res.comm_seconds * 1e3,
                  static_cast<long long>(res.bytes_on_wire),
                  static_cast<long long>(res.comm_rounds),
                  res.edge_imbalance,
                  point.checksum_match ? "yes" : "NO");
      IBFS_CHECK(point.checksum_match)
          << "partitioned depths diverged from the engine at P="
          << partitions << " schedule=" << point.schedule;
      points.push_back(point);
    }
  }

  const std::string out = EnvString("IBFS_BENCH_OUT", "BENCH_partition.json");
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("bench");
  w.String("partition");
  w.Key("schema_version");
  w.Int(1);
  w.Key("graph");
  w.String(graph_name);
  w.Key("config");
  w.BeginObject();
  w.Key("instances");
  w.Int(instances);
  w.Key("group_size");
  w.Int(options.group_size);
  w.Key("strategy");
  w.String("bitwise");
  w.EndObject();
  w.Key("baseline");
  w.BeginObject();
  w.Key("depth_checksum");
  WriteHex(&w, baseline_checksum);
  w.Key("sim_seconds");
  w.Double(baseline.value().sim_seconds);
  w.EndObject();
  w.Key("points");
  w.BeginArray();
  for (const Point& point : points) {
    w.BeginObject();
    w.Key("partitions");
    w.Int(point.partitions);
    w.Key("schedule");
    w.String(point.schedule);
    w.Key("checksum_match");
    w.Bool(point.checksum_match);
    w.Key("compute_seconds");
    w.Double(point.compute_seconds);
    w.Key("comm_seconds");
    w.Double(point.comm_seconds);
    w.Key("sim_seconds");
    w.Double(point.sim_seconds);
    w.Key("bytes_on_wire");
    w.Int(point.bytes_on_wire);
    w.Key("rounds");
    w.Int(point.rounds);
    w.Key("supersteps");
    w.Int(point.supersteps);
    w.Key("edge_imbalance");
    w.Double(point.edge_imbalance);
    w.Key("wall_seconds");
    w.Double(point.wall_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
