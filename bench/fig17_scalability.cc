// Figure 17: scalability of bitwise iBFS from 1 to 112 (simulated) K20
// GPUs on RD, FB, OR, TW and RM. Each GPU runs independent BFS groups —
// no inter-GPU communication — so the reported time is the slowest
// device's, and imbalance across groups caps the speedup (the paper
// averages 85x on 112 GPUs; RD, the uniform graph, scales best at 108x).
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "gpusim/cluster.h"
#include "util/csv.h"
#include "util/stats_math.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Figure 17", "speedup on 1..112 simulated GPUs");
  const int64_t instances = InstanceCount(4096);
  const int group_size = static_cast<int>(EnvInt64("IBFS_GROUP_SIZE", 32));
  const std::vector<int> gpu_counts = {1, 2, 4, 8, 16, 32, 64, 112};

  CsvTable table({"graph", "gpus", "speedup", "GTEPS"});
  std::vector<double> avg_speedup(gpu_counts.size(), 0.0);
  double total_teps_112 = 0.0;
  int graph_count = 0;
  for (const LoadedGraph& lg :
       LoadNamed({"RD", "FB", "OR", "TW", "RM"})) {
    // Many small groups give the cluster something to balance; sources are
    // resampled with wraparound if the component is smaller than asked.
    const auto sources = Sources(lg.graph, instances);
    EngineOptions options =
        BaseOptions(Strategy::kBitwise, GroupingPolicy::kGroupBy);
    options.group_size = group_size;
    options.device = gpusim::DeviceSpec::K20();
    const EngineResult result = MustRun(lg.graph, options, sources);

    const double total_edges = static_cast<double>(lg.graph.edge_count()) *
                               static_cast<double>(sources.size());
    for (size_t i = 0; i < gpu_counts.size(); ++i) {
      const double speedup = gpusim::ClusterSpeedup(
          result.group_seconds, gpu_counts[i],
          gpusim::PlacementPolicy::kRoundRobin);
      const double teps = result.teps * speedup;
      table.Row()
          .Add(lg.name)
          .Add(gpu_counts[i])
          .Add(speedup, 2)
          .Add(ToBillions(teps), 1);
      avg_speedup[i] += speedup;
      if (gpu_counts[i] == 112) total_teps_112 += teps;
    }
    (void)total_edges;
    ++graph_count;
  }
  for (size_t i = 0; i < gpu_counts.size(); ++i) {
    table.Row()
        .Add(std::string("AVG"))
        .Add(gpu_counts[i])
        .Add(avg_speedup[i] / graph_count, 2)
        .Add(std::string("-"));
  }
  table.Print(std::cout);
  std::printf(
      "max aggregate at 112 GPUs: %.0f GTEPS across tested graphs "
      "(paper: avg 85x speedup at 112 GPUs; 57,267 GTEPS max)\n",
      ToBillions(total_teps_112));
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
