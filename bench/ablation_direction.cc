// Ablation: the direction-optimizing switch. Compares the full
// direction-optimizing traversal against top-down-only (SpMM-BC's
// limitation) and against alpha variations — Enterprise's key parameter,
// which the paper inherits.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Ablation",
              "direction switch: top-down-only vs alpha variants");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "td_only_GTEPS", "alpha4_GTEPS",
                  "alpha14_GTEPS", "alpha64_GTEPS", "best_vs_td_x"});
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    auto run = [&](bool td_only, double alpha) {
      EngineOptions options =
          BaseOptions(Strategy::kBitwise, GroupingPolicy::kGroupBy);
      options.traversal.force_top_down = td_only;
      options.traversal.alpha = alpha;
      return MustRun(lg.graph, options, sources).teps;
    };
    const double td_only = run(true, 14.0);
    const double a4 = run(false, 4.0);
    const double a14 = run(false, 14.0);
    const double a64 = run(false, 64.0);
    const double best = std::max({a4, a14, a64});
    table.Row()
        .Add(lg.name)
        .Add(ToBillions(td_only), 2)
        .Add(ToBillions(a4), 2)
        .Add(ToBillions(a14), 2)
        .Add(ToBillions(a64), 2)
        .Add(best / td_only, 2);
  }
  table.Print(std::cout);
  std::printf(
      "(direction optimization is worth several x on power-law graphs; "
      "alpha matters less than having bottom-up at all)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
