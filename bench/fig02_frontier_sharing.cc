// Figure 2: average percentage of frontiers shared between two different
// BFS instances, split by traversal direction. The paper measures ~4% in
// top-down and up to 48.6% in bottom-up — the observation motivating joint
// traversal.
#include <iostream>

#include "bench/common.h"
#include "ibfs/runner.h"
#include "util/csv.h"
#include "util/prng.h"
#include "util/stats_math.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Figure 2",
              "frontier sharing % between two BFS instances, by direction");
  const int64_t pairs = EnvInt64("IBFS_PAIRS", 8);

  CsvTable table({"graph", "topdown_pct", "bottomup_pct"});
  for (const LoadedGraph& lg : LoadAll()) {
    RunningStats td;
    RunningStats bu;
    Prng prng(7);
    const auto pool = Sources(lg.graph, pairs * 2, prng.Next());
    for (int64_t p = 0; p < pairs; ++p) {
      const graph::VertexId pair[2] = {pool[2 * p], pool[2 * p + 1]};
      gpusim::Device device;
      TraversalOptions options;
      options.record_depths = false;
      auto result = RunGroup(Strategy::kJointTraversal, lg.graph,
                             {pair, 2}, options, &device);
      IBFS_CHECK(result.ok());
      // Sharing ratio of a 2-instance group: SD/2; the shared *fraction*
      // of frontiers is 2*(SD-1)/SD... we report SD-1 (0 = disjoint,
      // 1 = fully shared), scaled to percent, per direction.
      const GroupTrace& trace = result.value().trace;
      const double sd_td = trace.DirectionSharingDegree(false);
      const double sd_bu = trace.DirectionSharingDegree(true);
      if (sd_td > 0) td.Add((sd_td - 1.0) * 100.0);
      if (sd_bu > 0) bu.Add((sd_bu - 1.0) * 100.0);
    }
    table.Row().Add(lg.name).Add(td.mean(), 1).Add(bu.mean(), 1);
  }
  table.Print(std::cout);
  std::printf(
      "(paper: top-down ~4%% average, bottom-up up to 48.6%%)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
