// Figure 6: sharing-degree trend per level on the FB graph for two
// well-formed groups (A, B) and a random group. Group A, picked for the
// highest level-2 sharing degree, stays ahead at every later level —
// Theorem 1's observable consequence.
#include <algorithm>
#include <iostream>

#include "bench/common.h"
#include "ibfs/groupby.h"
#include "ibfs/runner.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

GroupTrace TraceOf(const graph::Csr& graph,
                   const std::vector<graph::VertexId>& group) {
  gpusim::Device device;
  TraversalOptions options;
  options.record_depths = false;
  auto result =
      RunGroup(Strategy::kJointTraversal, graph, group, options, &device);
  IBFS_CHECK(result.ok());
  return result.value().trace;
}

int Main() {
  PrintHeader("Figure 6", "sharing degree by level: groups A, B vs random");
  const LoadedGraph lg = LoadOne(gen::BenchmarkId::kFB);
  const int group_size = static_cast<int>(EnvInt64("IBFS_GROUP_SIZE", 128));

  // Form GroupBy groups over a large source sample, keep full groups.
  const auto sources = Sources(lg.graph, group_size * 16);
  GroupByParams params;
  params.group_size = group_size;
  Grouping grouping = GroupByOutdegree(lg.graph, sources, params);
  std::vector<std::pair<double, GroupTrace>> ranked;
  for (const auto& group : grouping.groups) {
    if (static_cast<int>(group.size()) != group_size) continue;
    GroupTrace trace = TraceOf(lg.graph, group);
    ranked.emplace_back(trace.LevelSharingDegree(2), std::move(trace));
    if (ranked.size() >= 6) break;
  }
  IBFS_CHECK(ranked.size() >= 2) << "need at least two full GroupBy groups";
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const GroupTrace& group_a = ranked[0].second;
  const GroupTrace& group_b = ranked[1].second;

  const Grouping random = RandomGrouping(sources, group_size, 99);
  const GroupTrace random_trace = TraceOf(lg.graph, random.groups[0]);

  CsvTable table({"level", "groupA_SD", "groupB_SD", "random_SD"});
  for (int level = 2; level <= 9; ++level) {
    table.Row()
        .Add(level)
        .Add(group_a.LevelSharingDegree(level), 1)
        .Add(group_b.LevelSharingDegree(level), 1)
        .Add(random_trace.LevelSharingDegree(level), 1);
  }
  table.Print(std::cout);
  std::printf(
      "(paper: A above B above random at every level; peaks at the first "
      "bottom-up levels, max SD = N = %d)\n",
      group_size);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
