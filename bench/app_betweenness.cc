// Application bench: multi-source Brandes betweenness on the simulated
// device (the SpMM-BC / McLaughlin-style workload of the paper's related
// work). Sweeps the pivot-group size: larger groups amortize the joint
// data structures, exactly as in concurrent BFS.
#include <iostream>

#include "apps/betweenness_device.h"
#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("App bench",
              "device multi-source Brandes betweenness, group-size sweep");
  const int64_t pivots_count = InstanceCount(256);

  CsvTable table({"graph", "group_size", "sim_ms", "pivots_per_s"});
  for (const LoadedGraph& lg : LoadNamed({"FB", "KG0", "TW"})) {
    const auto pivots = Sources(lg.graph, pivots_count);
    for (int group_size : {1, 16, 64, 128}) {
      auto result =
          apps::DeviceBetweenness(lg.graph, pivots, group_size);
      IBFS_CHECK(result.ok()) << result.status().ToString();
      table.Row()
          .Add(lg.name)
          .Add(group_size)
          .Add(result.value().sim_seconds * 1e3, 3)
          .Add(static_cast<double>(pivots.size()) /
                   result.value().sim_seconds,
               0);
    }
  }
  table.Print(std::cout);
  std::printf(
      "(grouping pivots speeds betweenness the same way it speeds BFS)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
