// Figure 15: traversal rate (billion TEPS) of Sequential BFS, Naive
// concurrent BFS, Joint Traversal, Bitwise optimization, and GroupBy on the
// 13 graph benchmarks. The paper's headline single-GPU result: joint ~1.4x
// over sequential, bitwise ~11x, GroupBy another ~2x (up to ~30x total).
#include <cmath>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Figure 15",
              "TEPS by strategy (sequential/naive/joint/bitwise/groupby)");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "seq_GTEPS", "naive_GTEPS", "joint_GTEPS",
                  "bitwise_GTEPS", "groupby_GTEPS", "joint_x", "bitwise_x",
                  "groupby_x"});
  double geo_joint = 0, geo_bit = 0, geo_grp = 0;
  int count = 0;
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);

    auto teps = [&](Strategy strategy, GroupingPolicy grouping) {
      return MustRun(lg.graph, BaseOptions(strategy, grouping), sources)
          .teps;
    };
    const double seq = teps(Strategy::kSequential, GroupingPolicy::kRandom);
    const double naive =
        teps(Strategy::kNaiveConcurrent, GroupingPolicy::kRandom);
    const double joint =
        teps(Strategy::kJointTraversal, GroupingPolicy::kRandom);
    const double bitwise = teps(Strategy::kBitwise, GroupingPolicy::kRandom);
    const double groupby =
        teps(Strategy::kBitwise, GroupingPolicy::kGroupBy);

    table.Row()
        .Add(lg.name)
        .Add(ToBillions(seq), 2)
        .Add(ToBillions(naive), 2)
        .Add(ToBillions(joint), 2)
        .Add(ToBillions(bitwise), 2)
        .Add(ToBillions(groupby), 2)
        .Add(joint / seq, 2)
        .Add(bitwise / seq, 2)
        .Add(groupby / seq, 2);
    geo_joint += std::log(joint / seq);
    geo_bit += std::log(bitwise / seq);
    geo_grp += std::log(groupby / seq);
    ++count;
  }
  table.Print(std::cout);
  std::printf(
      "geomean speedup vs sequential: joint=%.2fx bitwise=%.2fx "
      "groupby=%.2fx (paper: ~1.4x, ~11x, ~22x)\n",
      std::exp(geo_joint / count), std::exp(geo_bit / count),
      std::exp(geo_grp / count));
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
