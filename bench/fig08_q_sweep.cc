// Figure 8: GroupBy performance across the hub threshold q on HW, KG0, LJ
// and OR, reported relative to each graph's best q. The paper sees a peak
// in the mid range (their 128-1024 on million-vertex graphs): a tiny q
// makes every vertex a "hub" (no selectivity), a huge q matches no one.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Figure 8", "GroupBy performance vs hub threshold q");
  const int64_t instances = InstanceCount(512);
  const std::vector<int64_t> q_values = {1, 4, 16, 64, 128, 256, 1024, 4096};

  CsvTable table({"graph", "q", "GTEPS", "relative_pct"});
  for (const LoadedGraph& lg : LoadNamed({"HW", "KG0", "LJ", "OR"})) {
    const auto sources = Sources(lg.graph, instances);
    std::vector<double> teps;
    for (int64_t q : q_values) {
      EngineOptions options =
          BaseOptions(Strategy::kBitwise, GroupingPolicy::kGroupBy);
      options.groupby.q = q;
      // Isolate the hub rule: without the uniform-graph fallback, a q
      // above the maximum outdegree degrades to random grouping.
      options.groupby.uniform_fallback = false;
      teps.push_back(MustRun(lg.graph, options, sources).teps);
    }
    const double best = *std::max_element(teps.begin(), teps.end());
    for (size_t i = 0; i < q_values.size(); ++i) {
      table.Row()
          .Add(lg.name)
          .Add(q_values[i])
          .Add(ToBillions(teps[i]), 2)
          .Add(100.0 * teps[i] / best, 1);
    }
  }
  table.Print(std::cout);
  std::printf(
      "(paper: performance rises to a mid-range peak, falls for small and "
      "large q)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
