// Microbenchmarks for the simulator's coalescing arithmetic (it sits on
// every simulated memory access, so its own speed bounds simulation rate).
#include <benchmark/benchmark.h>

#include <vector>

#include "gpusim/memory_model.h"
#include "util/prng.h"

namespace ibfs::gpusim {
namespace {

void BM_GatherTransactions(benchmark::State& state) {
  Prng prng(3);
  std::vector<int64_t> idx(32);
  for (auto& i : idx) i = static_cast<int64_t>(prng.NextBounded(100000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GatherTransactions(idx, 4, 128));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_GatherTransactions);

void BM_ContiguousTransactions(benchmark::State& state) {
  const int64_t count = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ContiguousTransactions(17, count, 1, 128));
  }
}
BENCHMARK(BM_ContiguousTransactions)->Arg(32)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace ibfs::gpusim

BENCHMARK_MAIN();
