// Distributed-fleet bench, five experiments in one BENCH_fleet.json:
//
// 1. Shard-count sweep: the same open-loop workload driven through a
//    single BfsService (the baseline) and through fleets of {1, 2, 4, 8}
//    shards. Every fleet's submit-order checksum must equal the
//    baseline's — the scatter/route/merge path may change latency, never
//    answers. -> "points": [{shards, p50_ms, p99_ms, ...}].
//
// 2. Scatter-gather: the same arrivals bundled into multi-source
//    MultiQuery calls (4 sources per scatter) at 4 shards; the flattened
//    request-order checksum must again equal the baseline's.
//    -> "scatter": {...}.
//
// 3. Failover blip: a 4-shard fleet loses one shard at the schedule
//    midpoint. Every future must still resolve (unanswered == 0) and
//    every answer must match the fault-free CPU baseline; the recorded
//    p99 and reroute count quantify the blip. -> "failover": {...}.
//
// 4. Elastic episode: a 3-shard fleet loses shard 1 mid-drive and joins a
//    fresh shard at 75% of the schedule — the full kill -> serve -> grow
//    -> serve arc, with targeted cache warmup of the stolen segment.
//    Zero unanswered futures and zero mismatches or the bench aborts.
//    -> "elastic": {...}.
//
// 5. Replication sweep: the shard-count workload at R = {1, 2}; hedged
//    reads race the second replica, answers stay bit-identical to the
//    baseline, and the hedge counters quantify the insurance premium.
//    -> "replication": [{replication, hedges_fired, ...}].
//
// Environment knobs: IBFS_GRAPH (default PK), IBFS_FLEET_QPS (default
// 400), IBFS_FLEET_DURATION (default 1 s), IBFS_FLEET_VNODES (default
// 128), IBFS_FLEET_THREADS (default 2), IBFS_BENCH_OUT (default
// BENCH_fleet.json), IBFS_FLEET_SECTIONS ("all" | "elastic" — the latter
// runs only the baseline + elastic + replication sections, which is what
// the fleet_elastic_smoke ctest gates).
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "fleet/fleet.h"
#include "fleet/fleet_workload.h"
#include "obs/json.h"
#include "service/service.h"
#include "service/workload.h"
#include "util/checksum.h"

namespace ibfs::bench {
namespace {

struct Latency {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Latency Percentiles(const std::vector<service::QueryResult>& results) {
  const std::vector<double> bounds = obs::PowerOfTwoBounds(0.001, 32);
  obs::Histogram total("total_ms", bounds);
  for (const service::QueryResult& result : results) {
    if (result.status.ok()) total.Observe(result.latency.total_ms);
  }
  return {total.Percentile(0.50), total.Percentile(0.95),
          total.Percentile(0.99)};
}

// Submit-order fold of the OK depth checksums — the same merge DriveFleet
// computes, applied to the single-service baseline for comparison.
uint64_t FoldResults(const std::vector<service::QueryResult>& results) {
  uint64_t checksum = kFnv1aOffsetBasis;
  for (const service::QueryResult& result : results) {
    if (result.status.ok()) {
      checksum = fleet::FoldChecksum(checksum, result.depth_checksum);
    }
  }
  return checksum;
}

int Main() {
  PrintHeader("fleet bench",
              "shard sweep, scatter-gather, failover, elasticity, "
              "replication");
  const std::string graph_name = EnvString("IBFS_GRAPH", "PK");
  const std::string sections = EnvString("IBFS_FLEET_SECTIONS", "all");
  const bool run_core = sections != "elastic";
  std::vector<LoadedGraph> loaded_set =
      LoadNamed(std::vector<std::string>{graph_name});
  const LoadedGraph& loaded = loaded_set.front();

  service::WorkloadOptions arrivals;
  arrivals.arrival = service::ArrivalProcess::kPoisson;
  arrivals.qps = EnvDouble("IBFS_FLEET_QPS", 400.0);
  arrivals.duration_s = EnvDouble("IBFS_FLEET_DURATION", 1.0);
  arrivals.seed = 2016;
  auto events = service::GenerateArrivals(loaded.graph, arrivals);
  IBFS_CHECK(events.ok()) << events.status().ToString();

  service::ServiceOptions service_template;
  service_template.max_batch = 64;
  service_template.max_delay_ms = 2.0;
  service_template.execute_threads = EnvInt("IBFS_FLEET_THREADS", 2);
  service_template.keep_depths = false;
  service_template.engine =
      BaseOptions(Strategy::kBitwise, GroupingPolicy::kGroupBy);

  // Single-service baseline: the answers every fleet configuration must
  // reproduce bit for bit.
  auto baseline_svc =
      service::BfsService::Create(&loaded.graph, service_template);
  IBFS_CHECK(baseline_svc.ok()) << baseline_svc.status().ToString();
  auto baseline =
      service::DriveWorkload(baseline_svc.value().get(), events.value());
  IBFS_CHECK(baseline.ok()) << baseline.status().ToString();
  const uint64_t baseline_checksum = FoldResults(baseline.value().results);
  const Latency baseline_latency = Percentiles(baseline.value().results);
  std::printf("%8s %8s %8s %10s %10s %6s\n", "shards", "p50 ms", "p99 ms",
              "qps", "imbalance", "match");
  std::printf("%8s %8.2f %8.2f %10.1f %10s %6s\n", "base",
              baseline_latency.p50, baseline_latency.p99,
              baseline.value().achieved_qps, "-", "-");

  const int vnodes = EnvInt("IBFS_FLEET_VNODES", 128);
  struct Point {
    int shards = 0;
    Latency latency;
    double achieved_qps = 0.0;
    double imbalance = 0.0;
    bool checksum_match = false;
  };
  std::vector<Point> points;
  if (run_core) {
    for (int shards : {1, 2, 4, 8}) {
      fleet::FleetOptions options;
      options.shards = shards;
      options.vnodes = vnodes;
      options.service = service_template;
      auto door = fleet::FleetFrontDoor::Create(&loaded.graph, options);
      IBFS_CHECK(door.ok()) << door.status().ToString();
      fleet::FleetWorkloadOptions workload;
      workload.workload = arrivals;
      auto drive =
          fleet::DriveFleet(door.value().get(), events.value(), workload);
      IBFS_CHECK(drive.ok()) << drive.status().ToString();
      IBFS_CHECK(drive.value().unanswered == 0)
          << drive.value().unanswered << " futures never resolved";
      Point point;
      point.shards = shards;
      point.latency = Percentiles(drive.value().results);
      point.achieved_qps = drive.value().achieved_qps;
      point.imbalance = drive.value().stats.Imbalance();
      point.checksum_match = drive.value().checksum == baseline_checksum;
      IBFS_CHECK(point.checksum_match)
          << shards << "-shard fleet disagreed with the single-service "
          << "baseline";
      std::printf("%8d %8.2f %8.2f %10.1f %10.2f %6s\n", shards,
                  point.latency.p50, point.latency.p99, point.achieved_qps,
                  point.imbalance, point.checksum_match ? "yes" : "NO");
      points.push_back(point);
    }
  }

  // Scatter-gather: identical arrivals, bundled 4 sources per MultiQuery.
  int64_t scatter_multi_queries = 0;
  Latency scatter_latency;
  bool scatter_match = false;
  if (run_core) {
    fleet::FleetWorkloadOptions scatter_workload;
    scatter_workload.workload = arrivals;
    scatter_workload.multi_source = 4;
    fleet::FleetOptions scatter_options;
    scatter_options.shards = 4;
    scatter_options.vnodes = vnodes;
    scatter_options.service = service_template;
    auto scatter_door =
        fleet::FleetFrontDoor::Create(&loaded.graph, scatter_options);
    IBFS_CHECK(scatter_door.ok()) << scatter_door.status().ToString();
    auto scatter = fleet::DriveFleet(scatter_door.value().get(),
                                     events.value(), scatter_workload);
    IBFS_CHECK(scatter.ok()) << scatter.status().ToString();
    IBFS_CHECK(scatter.value().unanswered == 0);
    scatter_match = scatter.value().checksum == baseline_checksum;
    IBFS_CHECK(scatter_match)
        << "scatter-gather answers disagreed with the baseline";
    scatter_latency = Percentiles(scatter.value().results);
    scatter_multi_queries = scatter.value().multi_queries;
    std::printf("scatter-gather:  %lld multi-queries of 4, p50 %.2f ms, "
                "p99 %.2f ms, match %s\n",
                static_cast<long long>(scatter_multi_queries),
                scatter_latency.p50, scatter_latency.p99,
                scatter_match ? "yes" : "NO");
  }

  // Failover blip: 4 shards, one killed at the schedule midpoint. The
  // chaos harness also verifies every answer against the CPU reference.
  obs::FleetReport blip;
  if (run_core) {
    fleet::FleetWorkloadOptions failover_workload;
    failover_workload.workload = arrivals;
    failover_workload.kill_shard = 1;
    fleet::FleetOptions failover_options;
    failover_options.shards = 4;
    failover_options.vnodes = vnodes;
    failover_options.service = service_template;
    auto failover = fleet::RunFleetChaos(
        graph_name, loaded.graph, failover_options, failover_workload);
    IBFS_CHECK(failover.ok()) << failover.status().ToString();
    blip = failover.value();
    IBFS_CHECK(blip.unanswered == 0)
        << blip.unanswered << " futures never resolved across the failover";
    IBFS_CHECK(blip.checksum_mismatches == 0)
        << blip.checksum_mismatches
        << " answers diverged after the failover";
    std::printf("failover:        shard 1 killed mid-run; %lld reroutes, "
                "%lld unanswered, %lld/%lld checksums OK, p99 %.2f ms\n",
                static_cast<long long>(blip.failover_reroutes),
                static_cast<long long>(blip.unanswered),
                static_cast<long long>(blip.checksums_compared -
                                       blip.checksum_mismatches),
                static_cast<long long>(blip.checksums_compared),
                blip.total_ms.p99);
  }

  // Elastic episode: kill shard 1 at the midpoint, join a replacement at
  // 75% — traffic never stops, no future is lost, and every answer stays
  // bit-identical to the CPU baseline through both membership changes.
  fleet::FleetWorkloadOptions elastic_workload;
  elastic_workload.workload = arrivals;
  elastic_workload.kill_shard = 1;
  elastic_workload.join_shards = 1;
  fleet::FleetOptions elastic_options;
  elastic_options.shards = 3;
  elastic_options.vnodes = vnodes;
  elastic_options.service = service_template;
  elastic_options.service.cache.enabled = true;  // exercise join warmup
  auto elastic = fleet::RunFleetChaos(graph_name, loaded.graph,
                                      elastic_options, elastic_workload);
  IBFS_CHECK(elastic.ok()) << elastic.status().ToString();
  const obs::FleetReport& episode = elastic.value();
  IBFS_CHECK(episode.unanswered == 0)
      << episode.unanswered << " futures never resolved across the episode";
  IBFS_CHECK(episode.checksum_mismatches == 0)
      << episode.checksum_mismatches << " answers diverged in the episode";
  IBFS_CHECK(episode.shard_joins == 1)
      << "the elastic join never happened";
  std::printf("elastic:         kill 1 + join 1; %lld warmup entries, "
              "%lld reroutes, %lld/%lld checksums OK, p99 %.2f ms\n",
              static_cast<long long>(episode.warmup_entries),
              static_cast<long long>(episode.failover_reroutes),
              static_cast<long long>(episode.checksums_compared -
                                     episode.checksum_mismatches),
              static_cast<long long>(episode.checksums_compared),
              episode.total_ms.p99);

  // Replication sweep: R = {1, 2} at 4 shards. R = 1 is the zero-overhead
  // control; R = 2 hedges slow reads against the second replica. Both must
  // reproduce the baseline checksums exactly.
  struct ReplicationRow {
    int replication = 0;
    Latency latency;
    double achieved_qps = 0.0;
    int64_t hedges_fired = 0;
    int64_t hedges_won = 0;
    int64_t hedges_cancelled = 0;
    int64_t replica_mismatches = 0;
    int64_t replica_cache_writes = 0;
    bool checksum_match = false;
  };
  std::vector<ReplicationRow> replication_rows;
  for (int replication : {1, 2}) {
    fleet::FleetOptions options;
    options.shards = 4;
    options.vnodes = vnodes;
    options.service = service_template;
    options.service.cache.enabled = true;  // exercise replica fan-out
    options.replication = replication;
    auto door = fleet::FleetFrontDoor::Create(&loaded.graph, options);
    IBFS_CHECK(door.ok()) << door.status().ToString();
    fleet::FleetWorkloadOptions workload;
    workload.workload = arrivals;
    auto drive =
        fleet::DriveFleet(door.value().get(), events.value(), workload);
    IBFS_CHECK(drive.ok()) << drive.status().ToString();
    IBFS_CHECK(drive.value().unanswered == 0)
        << drive.value().unanswered << " futures never resolved at R="
        << replication;
    ReplicationRow row;
    row.replication = replication;
    row.latency = Percentiles(drive.value().results);
    row.achieved_qps = drive.value().achieved_qps;
    row.hedges_fired = drive.value().stats.hedges_fired;
    row.hedges_won = drive.value().stats.hedges_won;
    row.hedges_cancelled = drive.value().stats.hedges_cancelled;
    row.replica_mismatches = drive.value().stats.replica_mismatches;
    row.replica_cache_writes = drive.value().stats.replica_cache_writes;
    row.checksum_match = drive.value().checksum == baseline_checksum;
    IBFS_CHECK(row.checksum_match)
        << "R=" << replication
        << " fleet disagreed with the single-service baseline";
    IBFS_CHECK(row.replica_mismatches == 0)
        << row.replica_mismatches << " replica mismatches at R="
        << replication;
    std::printf("replication R=%d: p50 %.2f ms, p99 %.2f ms, %lld hedges "
                "(%lld won), match %s\n",
                replication, row.latency.p50, row.latency.p99,
                static_cast<long long>(row.hedges_fired),
                static_cast<long long>(row.hedges_won),
                row.checksum_match ? "yes" : "NO");
    replication_rows.push_back(row);
  }

  const std::string out = EnvString("IBFS_BENCH_OUT", "BENCH_fleet.json");
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("bench");
  w.String("fleet");
  w.Key("graph");
  w.String(graph_name);
  w.Key("arrival");
  w.String("poisson");
  w.Key("qps");
  w.Double(arrivals.qps);
  w.Key("duration_seconds");
  w.Double(arrivals.duration_s);
  w.Key("vnodes");
  w.Int(vnodes);
  w.Key("queries");
  w.Int(static_cast<int64_t>(events.value().size()));
  w.Key("sections");
  w.String(sections);
  w.Key("baseline");
  w.BeginObject();
  w.Key("p50_ms");
  w.Double(baseline_latency.p50);
  w.Key("p95_ms");
  w.Double(baseline_latency.p95);
  w.Key("p99_ms");
  w.Double(baseline_latency.p99);
  w.Key("achieved_qps");
  w.Double(baseline.value().achieved_qps);
  w.Key("checksum");
  w.Uint(baseline_checksum);
  w.EndObject();
  if (run_core) {
    w.Key("points");
    w.BeginArray();
    for (const Point& point : points) {
      w.BeginObject();
      w.Key("shards");
      w.Int(point.shards);
      w.Key("p50_ms");
      w.Double(point.latency.p50);
      w.Key("p95_ms");
      w.Double(point.latency.p95);
      w.Key("p99_ms");
      w.Double(point.latency.p99);
      w.Key("achieved_qps");
      w.Double(point.achieved_qps);
      w.Key("imbalance");
      w.Double(point.imbalance);
      w.Key("checksum_match");
      w.Bool(point.checksum_match);
      w.EndObject();
    }
    w.EndArray();
    w.Key("scatter");
    w.BeginObject();
    w.Key("shards");
    w.Int(4);
    w.Key("multi_source");
    w.Int(4);
    w.Key("multi_queries");
    w.Int(scatter_multi_queries);
    w.Key("p50_ms");
    w.Double(scatter_latency.p50);
    w.Key("p99_ms");
    w.Double(scatter_latency.p99);
    w.Key("checksum_match");
    w.Bool(scatter_match);
    w.EndObject();
    w.Key("failover");
    w.BeginObject();
    w.Key("shards");
    w.Int(4);
    w.Key("killed_shard");
    w.Int(1);
    w.Key("failover_reroutes");
    w.Int(blip.failover_reroutes);
    w.Key("fallback_answers");
    w.Int(blip.fallback_answers);
    w.Key("unanswered");
    w.Int(blip.unanswered);
    w.Key("checksums_compared");
    w.Int(blip.checksums_compared);
    w.Key("checksum_mismatches");
    w.Int(blip.checksum_mismatches);
    w.Key("p50_ms");
    w.Double(blip.total_ms.p50);
    w.Key("p99_ms");
    w.Double(blip.total_ms.p99);
    w.EndObject();
  }
  w.Key("elastic");
  w.BeginObject();
  w.Key("shards");
  w.Int(3);
  w.Key("killed_shard");
  w.Int(1);
  w.Key("joined_shards");
  w.Int(episode.joined_shards);
  w.Key("shard_joins");
  w.Int(episode.shard_joins);
  w.Key("warmup_entries");
  w.Int(episode.warmup_entries);
  w.Key("recoveries");
  w.Int(episode.recoveries);
  w.Key("failover_reroutes");
  w.Int(episode.failover_reroutes);
  w.Key("unanswered");
  w.Int(episode.unanswered);
  w.Key("checksums_compared");
  w.Int(episode.checksums_compared);
  w.Key("checksum_mismatches");
  w.Int(episode.checksum_mismatches);
  w.Key("p50_ms");
  w.Double(episode.total_ms.p50);
  w.Key("p99_ms");
  w.Double(episode.total_ms.p99);
  w.EndObject();
  w.Key("replication");
  w.BeginArray();
  for (const ReplicationRow& row : replication_rows) {
    w.BeginObject();
    w.Key("replication");
    w.Int(row.replication);
    w.Key("shards");
    w.Int(4);
    w.Key("p50_ms");
    w.Double(row.latency.p50);
    w.Key("p95_ms");
    w.Double(row.latency.p95);
    w.Key("p99_ms");
    w.Double(row.latency.p99);
    w.Key("achieved_qps");
    w.Double(row.achieved_qps);
    w.Key("hedges_fired");
    w.Int(row.hedges_fired);
    w.Key("hedges_won");
    w.Int(row.hedges_won);
    w.Key("hedges_cancelled");
    w.Int(row.hedges_cancelled);
    w.Key("replica_mismatches");
    w.Int(row.replica_mismatches);
    w.Key("replica_cache_writes");
    w.Int(row.replica_cache_writes);
    w.Key("checksum_match");
    w.Bool(row.checksum_match);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
