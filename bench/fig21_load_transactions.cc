// Figure 21: total global load transactions, joint traversal vs bitwise
// operation. Consolidating up to 128 statuses into packed words cuts the
// paper's loads by ~40% (53M -> 38M over 1024 instances).
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

uint64_t TotalLoads(const graph::Csr& graph,
                    std::span<const graph::VertexId> sources,
                    Strategy strategy) {
  EngineOptions options = BaseOptions(strategy, GroupingPolicy::kRandom);
  return MustRun(graph, options, sources).totals.mem.load_transactions;
}

int Main() {
  PrintHeader("Figure 21",
              "total global load transactions: joint vs bitwise");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "joint_M", "bitwise_M", "reduction_pct"});
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    const uint64_t joint =
        TotalLoads(lg.graph, sources, Strategy::kJointTraversal);
    const uint64_t bitwise =
        TotalLoads(lg.graph, sources, Strategy::kBitwise);
    table.Row()
        .Add(lg.name)
        .Add(static_cast<double>(joint) / 1e6, 3)
        .Add(static_cast<double>(bitwise) / 1e6, 3)
        .Add(100.0 * (1.0 - static_cast<double>(bitwise) /
                                static_cast<double>(joint)),
             1);
  }
  table.Print(std::cout);
  std::printf("(paper: ~40%% fewer load transactions with bitwise)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
