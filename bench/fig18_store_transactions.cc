// Figure 18: global store transactions during frontier-queue generation
// with (a) private per-instance queues, (b) a random-grouped joint queue,
// (c) a GroupBy joint queue. Enqueueing each shared frontier once cuts
// the paper's counts ~4x, and GroupBy another ~2.6x. (The paper runs 1024
// instances; default here is scaled down — set IBFS_INSTANCES=1024 to
// match.)
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

uint64_t FqGenStores(const graph::Csr& graph,
                     std::span<const graph::VertexId> sources,
                     Strategy strategy, GroupingPolicy policy) {
  EngineOptions options = BaseOptions(strategy, policy);
  const EngineResult result = MustRun(graph, options, sources);
  auto it = result.phases.find("fq_gen");
  IBFS_CHECK(it != result.phases.end());
  return it->second.mem.store_transactions;
}

int Main() {
  PrintHeader("Figure 18",
              "global store transactions in FQ generation: private / "
              "random JFQ / GroupBy JFQ");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "private_M", "random_jfq_M", "groupby_jfq_M",
                  "joint_saving_x", "groupby_saving_x"});
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    // Private queues: the sequential strategy generates one queue per
    // instance per level.
    const uint64_t priv = FqGenStores(lg.graph, sources,
                                      Strategy::kSequential,
                                      GroupingPolicy::kRandom);
    const uint64_t rand_jfq = FqGenStores(lg.graph, sources,
                                          Strategy::kJointTraversal,
                                          GroupingPolicy::kRandom);
    const uint64_t grp_jfq = FqGenStores(lg.graph, sources,
                                         Strategy::kJointTraversal,
                                         GroupingPolicy::kGroupBy);
    table.Row()
        .Add(lg.name)
        .Add(static_cast<double>(priv) / 1e6, 3)
        .Add(static_cast<double>(rand_jfq) / 1e6, 3)
        .Add(static_cast<double>(grp_jfq) / 1e6, 3)
        .Add(static_cast<double>(priv) / static_cast<double>(rand_jfq), 2)
        .Add(static_cast<double>(rand_jfq) / static_cast<double>(grp_jfq),
             2);
  }
  table.Print(std::cout);
  std::printf(
      "(paper: joint queue ~4x fewer stores than private, GroupBy another "
      "~2.6x)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
