// Figure 16: traversal rate when running different numbers of BFS groups
// on HW (total instances = groups x N). As more groups run, GroupBy can
// form better batches and the gap over random grouping widens — the paper
// sees random fluctuate at 75-90 GTEPS while GroupBy reaches 288.
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Figure 16", "TEPS vs number of groups (HW), GroupBy/random");
  const LoadedGraph lg = LoadOne(gen::BenchmarkId::kHW);
  const int group_size = static_cast<int>(EnvInt64("IBFS_GROUP_SIZE", 128));

  CsvTable table({"groups", "instances", "random_GTEPS", "groupby_GTEPS",
                  "gain_x"});
  for (int64_t groups : {1, 2, 4, 8, 16, 32}) {
    const int64_t instances = groups * group_size;
    if (instances > lg.graph.vertex_count()) break;
    const auto sources = Sources(lg.graph, instances);
    auto teps = [&](GroupingPolicy policy) {
      EngineOptions options = BaseOptions(Strategy::kBitwise, policy);
      options.group_size = group_size;
      return MustRun(lg.graph, options, sources).teps;
    };
    const double random = teps(GroupingPolicy::kRandom);
    const double groupby = teps(GroupingPolicy::kGroupBy);
    table.Row()
        .Add(groups)
        .Add(instances)
        .Add(ToBillions(random), 2)
        .Add(ToBillions(groupby), 2)
        .Add(groupby / random, 2);
  }
  table.Print(std::cout);
  std::printf(
      "(paper: GroupBy's advantage grows with the number of groups)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
