// Figure 19: global load transactions per warp request during traversal,
// naive multi-kernel vs joint traversal. The joint status array stores all
// instances' statuses of a vertex side by side, so contiguous threads
// coalesce — the paper measures ~4 transactions per request dropping to ~1.
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

double LoadsPerRequest(const graph::Csr& graph,
                       std::span<const graph::VertexId> sources,
                       Strategy strategy) {
  EngineOptions options = BaseOptions(strategy, GroupingPolicy::kRandom);
  const EngineResult result = MustRun(graph, options, sources);
  return result.totals.mem.LoadTransactionsPerRequest();
}

int Main() {
  PrintHeader("Figure 19",
              "global load transactions per request: naive vs joint");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "naive", "joint"});
  double sum_naive = 0, sum_joint = 0;
  int count = 0;
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    const double naive =
        LoadsPerRequest(lg.graph, sources, Strategy::kNaiveConcurrent);
    const double joint =
        LoadsPerRequest(lg.graph, sources, Strategy::kJointTraversal);
    table.Row().Add(lg.name).Add(naive, 2).Add(joint, 2);
    sum_naive += naive;
    sum_joint += joint;
    ++count;
  }
  table.Print(std::cout);
  std::printf("averages: naive=%.2f joint=%.2f (paper: ~4 -> ~1)\n",
              sum_naive / count, sum_joint / count);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
