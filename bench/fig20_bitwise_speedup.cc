// Figure 20: speedup of iBFS's bitwise operation over an MS-BFS-style
// bitwise baseline (per-level status reset, no early termination), under
// random grouping and under GroupBy. The paper gets 1.4x average with
// random groups and 2.6x with GroupBy — GroupBy compounds with early
// termination because grouped instances finish together.
#include <cmath>
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

double SimSeconds(const graph::Csr& graph,
                  std::span<const graph::VertexId> sources,
                  GroupingPolicy policy, bool msbfs_style) {
  EngineOptions options = BaseOptions(Strategy::kBitwise, policy);
  if (msbfs_style) {
    options.traversal.msbfs_reset = true;
    options.traversal.early_termination = false;
  }
  return MustRun(graph, options, sources).sim_seconds;
}

int Main() {
  PrintHeader("Figure 20",
              "bitwise speedup over MS-BFS-style baseline: random vs "
              "GroupBy");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "random_x", "groupby_x"});
  double log_rand = 0, log_grp = 0;
  int count = 0;
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    const double base = SimSeconds(lg.graph, sources,
                                   GroupingPolicy::kRandom, true);
    const double ours_random =
        SimSeconds(lg.graph, sources, GroupingPolicy::kRandom, false);
    const double base_grp = SimSeconds(lg.graph, sources,
                                       GroupingPolicy::kGroupBy, true);
    const double ours_grp =
        SimSeconds(lg.graph, sources, GroupingPolicy::kGroupBy, false);
    const double random_x = base / ours_random;
    const double groupby_x = base_grp / ours_grp *
                             (base / base_grp);  // total gain over baseline
    table.Row().Add(lg.name).Add(random_x, 2).Add(groupby_x, 2);
    log_rand += std::log(random_x);
    log_grp += std::log(groupby_x);
    ++count;
  }
  table.Print(std::cout);
  std::printf(
      "geomean: random=%.2fx groupby=%.2fx (paper: 1.4x and 2.6x)\n",
      std::exp(log_rand / count), std::exp(log_grp / count));
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
