// Ablation: group size N. Bigger groups amortize more shared work but need
// more status-array memory per vertex; the paper fixes N = 128 from the
// device-memory bound of Section 3.
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Ablation", "group size N sweep (bitwise + GroupBy)");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "N", "GTEPS", "sharing_ratio_pct"});
  for (const LoadedGraph& lg : LoadNamed({"FB", "KG0", "RD", "TW"})) {
    const auto sources = Sources(lg.graph, instances);
    for (int n : {16, 32, 64, 128, 256}) {
      EngineOptions options =
          BaseOptions(Strategy::kBitwise, GroupingPolicy::kGroupBy);
      options.group_size = n;
      options.groupby.group_size = n;
      const EngineResult result = MustRun(lg.graph, options, sources);
      table.Row()
          .Add(lg.name)
          .Add(n)
          .Add(ToBillions(result.teps), 2)
          .Add(100.0 * result.SharingRatio(), 1);
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
