// Ablation: the two GroupBy rules in isolation. Rule 1 alone (small source
// outdegree, no hub requirement) degenerates to near-random; Rule 2 alone
// (shared hub, any source degree) recovers most of the benefit; both
// together are best — the complementarity Section 5.2 argues for.
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Ablation", "GroupBy rules: random / rule2-only / both");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "random_GTEPS", "rule2_only_GTEPS",
                  "both_GTEPS", "twohop_GTEPS", "both_vs_random_x"});
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    auto run = [&](GroupingPolicy policy, bool rule1, int hub_depth) {
      EngineOptions options = BaseOptions(Strategy::kBitwise, policy);
      if (!rule1) {
        // Disable Rule 1 by accepting any source outdegree.
        options.groupby.p_sequence = {int64_t{1} << 30};
      }
      options.groupby.hub_search_depth = hub_depth;
      return MustRun(lg.graph, options, sources).teps;
    };
    const double random = run(GroupingPolicy::kRandom, true, 1);
    const double rule2 = run(GroupingPolicy::kGroupBy, false, 1);
    const double both = run(GroupingPolicy::kGroupBy, true, 1);
    // "within the first several levels": hubs found up to two hops out.
    const double twohop = run(GroupingPolicy::kGroupBy, true, 2);
    table.Row()
        .Add(lg.name)
        .Add(ToBillions(random), 2)
        .Add(ToBillions(rule2), 2)
        .Add(ToBillions(both), 2)
        .Add(ToBillions(twohop), 2)
        .Add(both / random, 2);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
