#ifndef IBFS_BENCH_COMMON_H_
#define IBFS_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "gen/benchmarks.h"
#include "graph/components.h"
#include "graph/csr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/logging.h"

namespace ibfs::bench {

/// One generated benchmark graph.
struct LoadedGraph {
  std::string name;
  gen::BenchmarkId id;
  graph::Csr graph;
};

/// Generates one preset at base scale + IBFS_SCALE (env, default 0).
inline LoadedGraph LoadOne(gen::BenchmarkId id) {
  auto result = gen::GenerateBenchmark(id, gen::EnvScaleDelta());
  IBFS_CHECK(result.ok()) << result.status().ToString();
  return {gen::GetBenchmark(id).name, id, std::move(result).value()};
}

/// Generates the full 13-graph suite (Section 8.1).
inline std::vector<LoadedGraph> LoadAll() {
  std::vector<LoadedGraph> graphs;
  for (const auto& spec : gen::AllBenchmarks()) {
    graphs.push_back(LoadOne(spec.id));
  }
  return graphs;
}

/// Generates a named subset.
inline std::vector<LoadedGraph> LoadNamed(
    const std::vector<std::string>& names) {
  std::vector<LoadedGraph> graphs;
  for (const auto& name : names) {
    auto id = gen::BenchmarkByName(name);
    IBFS_CHECK(id.has_value()) << "unknown benchmark " << name;
    graphs.push_back(LoadOne(*id));
  }
  return graphs;
}

/// Giant-component source sample (the paper's Graph500-style selection).
inline std::vector<graph::VertexId> Sources(const graph::Csr& graph,
                                            int64_t count,
                                            uint64_t seed = 2016) {
  return graph::SampleConnectedSources(graph, count, seed);
}

/// Instance count for a bench, overridable via IBFS_INSTANCES.
inline int64_t InstanceCount(int64_t def) {
  return EnvInt64("IBFS_INSTANCES", def);
}

/// Process-wide telemetry for the bench harnesses, driven by environment
/// variables so the figure mains need no flag plumbing:
///   IBFS_TRACE_OUT=path    Chrome trace-event JSON, written at exit
///   IBFS_METRICS_OUT=path  global metrics snapshot, written at exit
/// With neither set this returns a disabled (all-null) observer, keeping
/// the default bench path at its usual cost.
inline obs::Observer BenchObserver() {
  static obs::Tracer tracer;
  static const std::string trace_out = EnvString("IBFS_TRACE_OUT", "");
  static const std::string metrics_out = EnvString("IBFS_METRICS_OUT", "");
  static const bool flush_registered = [] {
    if (trace_out.empty() && metrics_out.empty()) return false;
    std::atexit([] {
      if (!trace_out.empty()) {
        const Status status = tracer.WriteFile(trace_out);
        if (status.ok()) {
          std::fprintf(stderr, "wrote %s\n", trace_out.c_str());
        } else {
          std::fprintf(stderr, "trace write failed: %s\n",
                       status.ToString().c_str());
        }
      }
      if (!metrics_out.empty()) {
        const Status status =
            obs::MetricsRegistry::Global().WriteFile(metrics_out);
        if (status.ok()) {
          std::fprintf(stderr, "wrote %s\n", metrics_out.c_str());
        } else {
          std::fprintf(stderr, "metrics write failed: %s\n",
                       status.ToString().c_str());
        }
      }
    });
    return true;
  }();
  (void)flush_registered;
  obs::Observer observer;
  if (!trace_out.empty()) observer.tracer = &tracer;
  if (!metrics_out.empty()) {
    observer.metrics = &obs::MetricsRegistry::Global();
  }
  return observer;
}

/// Baseline engine options shared by the figure harnesses. Telemetry is
/// attached per BenchObserver() (off unless the env vars are set).
/// IBFS_THREADS sets the host worker count (default 1 = serial so a bench
/// box's wall-clock numbers stay comparable run to run; 0 = one worker per
/// hardware thread). Simulated results are bit-identical at any setting.
inline EngineOptions BaseOptions(Strategy strategy, GroupingPolicy grouping) {
  EngineOptions options;
  options.strategy = strategy;
  options.grouping = grouping;
  options.keep_depths = false;
  options.traversal.collect_instance_stats = false;
  options.observer = BenchObserver();
  options.threads = static_cast<int>(EnvInt64("IBFS_THREADS", 1));
  return options;
}

/// Runs the engine and dies on error (benches have no recovery path).
inline EngineResult MustRun(const graph::Csr& graph,
                            const EngineOptions& options,
                            std::span<const graph::VertexId> sources) {
  Engine engine(&graph, options);
  auto result = engine.Run(sources);
  IBFS_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Uniform banner so the tee'd bench log reads like the paper's figures.
inline void PrintHeader(const char* exp_id, const char* description) {
  std::printf("=== %s: %s ===\n", exp_id, description);
  std::printf("(scaled graph presets; IBFS_SCALE=%d, see DESIGN.md §2)\n",
              gen::EnvScaleDelta());
}

inline double ToBillions(double teps) { return teps / 1e9; }

}  // namespace ibfs::bench

#endif  // IBFS_BENCH_COMMON_H_
