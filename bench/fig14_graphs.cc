// Figure 14: the graph benchmark inventory — vertex and edge counts plus
// degree statistics for the 13 scaled presets (the paper's range: up to
// 17M vertices and 1B edges; ours are laptop-scale with the same relative
// shapes, see DESIGN.md §2).
#include <iostream>

#include "bench/common.h"
#include "graph/degree_stats.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Figure 14", "graph benchmark inventory");
  CsvTable table({"graph", "vertices", "edges", "avg_deg", "max_deg",
                  "kind"});
  for (const LoadedGraph& lg : LoadAll()) {
    const graph::DegreeStats stats = graph::ComputeDegreeStats(lg.graph);
    table.Row()
        .Add(lg.name)
        .Add(stats.vertex_count)
        .Add(stats.edge_count)
        .Add(stats.avg_outdegree, 1)
        .Add(stats.max_outdegree)
        .Add(std::string(gen::GetBenchmark(lg.id).uniform ? "uniform"
                                                          : "power-law"));
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
