// Figure 11: standard deviation of per-instance bottom-up inspection
// counts, before and after GroupBy. GroupBy batches instances that find
// their parents at similar cost, cutting the paper's stddev by ~13x on
// average (66x on TW) — the workload-balance effect of Section 5.3.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "util/csv.h"
#include "util/stats_math.h"

namespace ibfs::bench {
namespace {

// Average over groups of the stddev of per-frontier bottom-up scan
// lengths (how many neighbors each frontier's thread inspected before
// early termination or exhaustion) — the workload-imbalance distribution
// Figure 11 reports.
double BalanceStddev(const graph::Csr& graph,
                     std::span<const graph::VertexId> sources,
                     GroupingPolicy policy) {
  EngineOptions options = BaseOptions(Strategy::kBitwise, policy);
  options.traversal.collect_instance_stats = true;
  const EngineResult result = MustRun(graph, options, sources);
  RunningStats per_group;
  for (const GroupResult& group : result.groups) {
    if (group.trace.bottom_up_search_lengths.count() > 1) {
      per_group.Add(group.trace.bottom_up_search_lengths.stddev());
    }
  }
  return per_group.mean();
}

int Main() {
  PrintHeader("Figure 11",
              "stddev of bottom-up inspections per instance, random vs "
              "GroupBy");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "random_stddev", "groupby_stddev", "reduction_x"});
  double total_reduction = 0;
  int count = 0;
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    const double random =
        BalanceStddev(lg.graph, sources, GroupingPolicy::kRandom);
    const double grouped =
        BalanceStddev(lg.graph, sources, GroupingPolicy::kGroupBy);
    const double reduction = grouped > 0 ? random / grouped : 0.0;
    table.Row()
        .Add(lg.name)
        .Add(random, 1)
        .Add(grouped, 1)
        .Add(reduction, 2);
    if (reduction > 0) {
      total_reduction += std::log(reduction);
      ++count;
    }
  }
  table.Print(std::cout);
  std::printf("geomean reduction: %.2fx (paper: 13x average, 66x max)\n",
              count > 0 ? std::exp(total_reduction / count) : 0.0);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
