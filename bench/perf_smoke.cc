// Parallel-engine smoke: wall-clock speedup of host-side parallel group
// execution (EngineOptions::threads) on the Figure 15 bitwise workload.
// Runs the identical workload serially and with a worker pool, checks the
// simulated results are bit-identical, and writes BENCH_parallel.json:
//   {"bench":"parallel_smoke","serial_seconds":..,"parallel_seconds":..,
//    "threads":..,"speedup":..,"deterministic":true,...}
// Environment knobs: IBFS_INSTANCES (default 512), IBFS_SMOKE_THREADS
// (default 4), IBFS_BENCH_OUT (default BENCH_parallel.json).
#include <chrono>
#include <fstream>
#include <vector>

#include "bench/common.h"
#include "obs/json.h"
#include "util/thread_pool.h"

namespace ibfs::bench {
namespace {

struct PassResult {
  double wall_seconds = 0.0;
  // Deterministic fingerprints of the simulated run, compared bit-for-bit
  // between the serial and parallel passes.
  std::vector<double> sim_seconds;
  std::vector<double> teps;
  std::vector<int64_t> load_transactions;
};

PassResult RunPass(const std::vector<LoadedGraph>& graphs,
                   const std::vector<std::vector<graph::VertexId>>& sources,
                   int threads, int64_t group_size) {
  PassResult pass;
  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < graphs.size(); ++i) {
    for (GroupingPolicy grouping :
         {GroupingPolicy::kRandom, GroupingPolicy::kGroupBy}) {
      EngineOptions options = BaseOptions(Strategy::kBitwise, grouping);
      options.threads = threads;
      options.group_size = static_cast<int>(group_size);
      const EngineResult res = MustRun(graphs[i].graph, options, sources[i]);
      pass.sim_seconds.push_back(res.sim_seconds);
      pass.teps.push_back(res.teps);
      pass.load_transactions.push_back(res.totals.mem.load_transactions);
    }
  }
  pass.wall_seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return pass;
}

int Main() {
  PrintHeader("parallel smoke",
              "wall-clock speedup of parallel group execution (bitwise, "
              "random + groupby)");
  const int64_t instances = InstanceCount(512);
  // Smaller groups than the paper default so every pass has enough
  // schedulable units (instances/64 groups) to keep the pool busy.
  const int64_t group_size = 64;
  const int threads =
      static_cast<int>(EnvInt64("IBFS_SMOKE_THREADS", 4));

  const std::vector<LoadedGraph> graphs = LoadAll();
  std::vector<std::vector<graph::VertexId>> sources;
  sources.reserve(graphs.size());
  for (const LoadedGraph& lg : graphs) {
    sources.push_back(Sources(lg.graph, instances));
  }

  const PassResult serial = RunPass(graphs, sources, 1, group_size);
  const PassResult parallel = RunPass(graphs, sources, threads, group_size);

  // The tentpole claim: parallelism must not change the simulation, only
  // the wall clock. Any drift here is a determinism bug, so die loudly.
  bool deterministic = serial.sim_seconds == parallel.sim_seconds &&
                       serial.teps == parallel.teps &&
                       serial.load_transactions == parallel.load_transactions;
  IBFS_CHECK(deterministic)
      << "parallel run diverged from serial simulated results";

  const double speedup = parallel.wall_seconds > 0.0
                             ? serial.wall_seconds / parallel.wall_seconds
                             : 0.0;
  const int hardware = ThreadPool::HardwareConcurrency();
  std::printf("serial (1 thread):    %.3f s\n", serial.wall_seconds);
  std::printf("parallel (%d threads): %.3f s\n", threads,
              parallel.wall_seconds);
  std::printf("speedup:              %.2fx\n", speedup);
  std::printf("deterministic:        %s\n", deterministic ? "yes" : "NO");
  if (hardware < threads) {
    std::printf(
        "note: only %d hardware thread(s) available — wall-clock speedup "
        "is bounded by the host, not the engine\n",
        hardware);
  }

  const std::string out = EnvString("IBFS_BENCH_OUT", "BENCH_parallel.json");
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("bench");
  w.String("parallel_smoke");
  w.Key("workload");
  w.String("fig15-bitwise");
  w.Key("instances");
  w.Int(instances);
  w.Key("group_size");
  w.Int(group_size);
  w.Key("runs");
  w.Int(static_cast<int64_t>(serial.sim_seconds.size()));
  w.Key("threads");
  w.Int(threads);
  w.Key("hardware_concurrency");
  w.Int(hardware);
  w.Key("serial_seconds");
  w.Double(serial.wall_seconds);
  w.Key("parallel_seconds");
  w.Double(parallel.wall_seconds);
  w.Key("speedup");
  w.Double(speedup);
  w.Key("deterministic");
  w.Bool(deterministic);
  w.EndObject();
  os << '\n';
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
