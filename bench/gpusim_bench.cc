// Simulator fast-path microbench: wall-clock cost of the gpusim
// accounting layer and of the two shared-status traversal kernels whose
// inner loops dominate serving latency, plus an end-to-end serve-path p50
// under the BENCH_service.json conditions. Writes BENCH_gpusim.json.
//
// Sections:
//   accounting     tight BeginKernel/LoadContiguous/Compute/Atomic/End
//                  loop — ns per accounted call, the per-call overhead the
//                  batched entry points exist to avoid.
//   bitwise_sweep  Engine run, bitwise strategy (fused frontier sweep) —
//                  the ">= 2x wall-clock" target of the fast-path PR. The
//                  timed runs skip depth materialization (the serve-path
//                  configuration); an untimed depth-recording pass pins
//                  the checksum.
//   joint_sweep    Engine run, joint-traversal strategy, same scheme.
//   serve          open-loop poisson workload through BfsService (cache
//                  off): queue+batch+execute latency percentiles.
//
// Every section also records simulation-identity fingerprints (depth
// checksums, transaction counts, simulated seconds): a fast path that
// changes any of them is a broken fast path, and tools/check_bench.py
// fails the bench_smoke ctest on any fingerprint drift vs the committed
// BENCH_gpusim.json (wall-clock drifts only warn inside a tolerance band).
//
// Environment knobs (all optional):
//   IBFS_GPUSIM_BENCH_SCALE      RMAT scale of the micro graphs (def 14)
//   IBFS_GPUSIM_BENCH_EDGES      RMAT edge factor (def 16)
//   IBFS_GPUSIM_BENCH_INSTANCES  BFS instances per engine run (def 256)
//   IBFS_GPUSIM_BENCH_GROUP     group size N (def 64)
//   IBFS_GPUSIM_BENCH_REPEATS    timed repetitions, best-of (def 3)
//   IBFS_GPUSIM_BENCH_QPS        serve-section offered load (def 400)
//   IBFS_GPUSIM_BENCH_DURATION   serve-section seconds (def 1.0)
//   IBFS_GPUSIM_BENCH_SERVE      0 skips the serve section (def 1)
//   IBFS_GPUSIM_BENCH_OUT        output path (def BENCH_gpusim.json)
//   IBFS_GPUSIM_BENCH_BASELINE   path to a pre-refactor run of this bench;
//                                embeds it plus speedup ratios in the
//                                output (how BENCH_gpusim.json records its
//                                before/after evidence)
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "gen/rmat.h"
#include "obs/json.h"
#include "service/service.h"
#include "service/workload.h"
#include "util/checksum.h"

namespace ibfs::bench {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepResult {
  double best_seconds = 0.0;
  double mean_seconds = 0.0;
  double sim_seconds = 0.0;
  uint64_t depth_checksum = 0;
  uint64_t load_transactions = 0;
  uint64_t store_transactions = 0;
  uint64_t atomic_ops = 0;
};

SweepResult RunSweep(const graph::Csr& graph,
                     std::span<const graph::VertexId> sources,
                     Strategy strategy, int group_size, int repeats) {
  // The timed loop runs keep_depths=false: what the fast path optimizes is
  // the traversal/accounting inner loops, and the serve path (the latency
  // consumer) runs without depth materialization too. Depth correctness is
  // still part of the fingerprint — a separate untimed keep_depths=true
  // pass below supplies the checksum that check_bench.py pins.
  EngineOptions options = BaseOptions(strategy, GroupingPolicy::kGroupBy);
  options.group_size = group_size;
  options.keep_depths = false;
  options.threads = 1;  // measure the kernel loops, not host parallelism
  SweepResult sweep;
  sweep.best_seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const double start = Now();
    const EngineResult result = MustRun(graph, options, sources);
    const double elapsed = Now() - start;
    sweep.best_seconds = std::min(sweep.best_seconds, elapsed);
    sweep.mean_seconds += elapsed / repeats;
    if (r == 0) {
      sweep.sim_seconds = result.sim_seconds;
      sweep.load_transactions = result.totals.mem.load_transactions;
      sweep.store_transactions = result.totals.mem.store_transactions;
      sweep.atomic_ops = result.totals.mem.atomic_ops;
    } else {
      IBFS_CHECK(result.sim_seconds == sweep.sim_seconds &&
                 result.totals.mem.load_transactions ==
                     sweep.load_transactions)
          << "simulation not deterministic across repeats";
    }
  }
  // Untimed verification pass with depth recording on: the FNV checksum
  // over every group's depth vectors is the cross-binary identity witness
  // (bit-identical before/after the fast path, or the bench gate fails).
  options.keep_depths = true;
  const EngineResult verify = MustRun(graph, options, sources);
  uint64_t state = kFnv1aOffsetBasis;
  for (const GroupResult& group : verify.groups) {
    for (const std::vector<uint8_t>& depths : group.depths) {
      state = Fnv1aExtend(state, depths);
    }
  }
  sweep.depth_checksum = state;
  return sweep;
}

struct AccountingResult {
  double seconds = 0.0;
  int64_t calls = 0;
  double ns_per_call = 0.0;
  double sim_seconds = 0.0;
  uint64_t load_transactions = 0;
};

// The accounting layer in isolation: kernels that only account (no graph
// work), shaped like a bottom-up inner loop — one small contiguous row
// load plus a word's worth of compute per "neighbor".
AccountingResult RunAccounting() {
  constexpr int kKernels = 2000;
  constexpr int kCallsPerKernel = 2000;
  gpusim::Device device;
  const double start = Now();
  for (int k = 0; k < kKernels; ++k) {
    auto scope = device.BeginKernel(k % 2 == 0 ? "td_inspect" : "bu_inspect");
    scope.BeginItem();
    for (int c = 0; c < kCallsPerKernel; ++c) {
      scope.LoadContiguous(static_cast<int64_t>(c) * 3, 2, 8);
      scope.Compute(2);
      scope.SharedBytes(16);
      if ((c & 15) == 0) scope.Atomic(1);
    }
    scope.EndItem();
  }
  AccountingResult result;
  result.seconds = Now() - start;
  result.calls = int64_t{kKernels} * kCallsPerKernel * 4;
  result.ns_per_call = result.seconds * 1e9 / result.calls;
  result.sim_seconds = device.elapsed_seconds();
  result.load_transactions = device.totals().mem.load_transactions;
  return result;
}

struct ServeResult {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double achieved_qps = 0.0;
  int64_t completed = 0;
  uint64_t checksum = 0;
};

ServeResult RunServe(const graph::Csr& graph, double qps,
                     double duration_s) {
  service::WorkloadOptions workload;
  workload.arrival = service::ArrivalProcess::kPoisson;
  workload.qps = qps;
  workload.duration_s = duration_s;
  workload.seed = 2016;
  auto events = service::GenerateArrivals(graph, workload);
  IBFS_CHECK(events.ok()) << events.status().ToString();

  service::ServiceOptions options;
  options.max_batch = 64;
  options.max_delay_ms = 2.0;
  options.execute_threads = 2;
  options.keep_depths = false;
  options.cache.enabled = false;  // measure execution, not cache hits
  options.engine = BaseOptions(Strategy::kBitwise, GroupingPolicy::kGroupBy);
  auto svc = service::BfsService::Create(&graph, options);
  IBFS_CHECK(svc.ok()) << svc.status().ToString();
  auto drive = service::DriveWorkload(svc.value().get(), events.value());
  IBFS_CHECK(drive.ok()) << drive.status().ToString();

  ServeResult serve;
  std::vector<double> totals;
  uint64_t state = kFnv1aOffsetBasis;
  for (const auto& query : drive.value().results) {
    IBFS_CHECK(query.status.ok()) << query.status.ToString();
    totals.push_back(query.latency.total_ms);
    const uint64_t checksum = query.depth_checksum;
    state = Fnv1aExtend(
        state, {reinterpret_cast<const uint8_t*>(&checksum),
                sizeof(checksum)});
  }
  serve.checksum = state;
  serve.completed = static_cast<int64_t>(totals.size());
  std::sort(totals.begin(), totals.end());
  const auto pct = [&totals](double p) {
    if (totals.empty()) return 0.0;
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(totals.size() - 1));
    return totals[index];
  };
  serve.p50_ms = pct(0.50);
  serve.p95_ms = pct(0.95);
  serve.p99_ms = pct(0.99);
  serve.achieved_qps =
      drive.value().wall_seconds > 0.0
          ? static_cast<double>(totals.size()) / drive.value().wall_seconds
          : 0.0;
  return serve;
}

void WriteHex(obs::JsonWriter* w, uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, value);
  w->String(buf);
}

void WriteSweep(obs::JsonWriter* w, const SweepResult& sweep) {
  w->BeginObject();
  w->Key("wall_seconds_best");
  w->Double(sweep.best_seconds);
  w->Key("wall_seconds_mean");
  w->Double(sweep.mean_seconds);
  w->Key("sim_seconds");
  w->Double(sweep.sim_seconds);
  w->Key("depth_checksum");
  WriteHex(w, sweep.depth_checksum);
  w->Key("load_transactions");
  w->Int(static_cast<int64_t>(sweep.load_transactions));
  w->Key("store_transactions");
  w->Int(static_cast<int64_t>(sweep.store_transactions));
  w->Key("atomic_ops");
  w->Int(static_cast<int64_t>(sweep.atomic_ops));
  w->EndObject();
}

int Main() {
  PrintHeader("gpusim fast path",
              "accounting overhead + traversal-kernel wall clock + serve "
              "p50");
  const int scale = EnvInt("IBFS_GPUSIM_BENCH_SCALE", 14);
  const int edge_factor = EnvInt("IBFS_GPUSIM_BENCH_EDGES", 16);
  const int64_t instances = EnvInt64("IBFS_GPUSIM_BENCH_INSTANCES", 256);
  const int group_size = EnvInt("IBFS_GPUSIM_BENCH_GROUP", 64);
  const int repeats = EnvInt("IBFS_GPUSIM_BENCH_REPEATS", 3);
  const double qps = EnvDouble("IBFS_GPUSIM_BENCH_QPS", 400.0);
  const double duration_s = EnvDouble("IBFS_GPUSIM_BENCH_DURATION", 1.0);
  const bool run_serve = EnvBool("IBFS_GPUSIM_BENCH_SERVE", true);

  gen::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 42;
  auto generated = gen::GenerateRmat(params);
  IBFS_CHECK(generated.ok()) << generated.status().ToString();
  const graph::Csr graph = std::move(generated).value();
  const std::vector<graph::VertexId> sources = Sources(graph, instances);

  const AccountingResult accounting = RunAccounting();
  std::printf("accounting:    %7.3f s for %lld calls (%.1f ns/call)\n",
              accounting.seconds,
              static_cast<long long>(accounting.calls),
              accounting.ns_per_call);

  const SweepResult bitwise =
      RunSweep(graph, sources, Strategy::kBitwise, group_size, repeats);
  std::printf("bitwise sweep: %7.3f s best of %d (sim %.6f s, checksum "
              "%016" PRIx64 ")\n",
              bitwise.best_seconds, repeats, bitwise.sim_seconds,
              bitwise.depth_checksum);

  const SweepResult joint =
      RunSweep(graph, sources, Strategy::kJointTraversal, group_size,
               repeats);
  std::printf("joint sweep:   %7.3f s best of %d (sim %.6f s, checksum "
              "%016" PRIx64 ")\n",
              joint.best_seconds, repeats, joint.sim_seconds,
              joint.depth_checksum);

  ServeResult serve;
  if (run_serve) {
    serve = RunServe(graph, qps, duration_s);
    std::printf("serve:         p50 %.3f ms  p95 %.3f ms  p99 %.3f ms "
                "(%lld queries)\n",
                serve.p50_ms, serve.p95_ms, serve.p99_ms,
                static_cast<long long>(serve.completed));
  }

  // Optional before/after embedding: point IBFS_GPUSIM_BENCH_BASELINE at a
  // pre-refactor run of this bench and the output carries that run plus
  // the headline speedups.
  const std::string baseline_path =
      EnvString("IBFS_GPUSIM_BENCH_BASELINE", "");
  obs::JsonValue baseline;
  bool have_baseline = false;
  if (!baseline_path.empty()) {
    auto parsed = obs::ParseJsonFile(baseline_path);
    IBFS_CHECK(parsed.ok()) << parsed.status().ToString();
    baseline = std::move(parsed).value();
    have_baseline = true;
  }
  const auto baseline_best = [&baseline](const char* section) {
    const obs::JsonValue* s = baseline.Find(section);
    const obs::JsonValue* v =
        s != nullptr ? s->Find("wall_seconds_best") : nullptr;
    return v != nullptr && v->is_number() ? v->number_value() : 0.0;
  };

  const std::string out =
      EnvString("IBFS_GPUSIM_BENCH_OUT", "BENCH_gpusim.json");
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("bench");
  w.String("gpusim_fastpath");
  w.Key("schema_version");
  w.Int(1);
  w.Key("config");
  w.BeginObject();
  w.Key("rmat_scale");
  w.Int(scale);
  w.Key("edge_factor");
  w.Int(edge_factor);
  w.Key("instances");
  w.Int(instances);
  w.Key("group_size");
  w.Int(group_size);
  w.Key("repeats");
  w.Int(repeats);
  w.Key("qps");
  w.Double(qps);
  w.Key("duration_s");
  w.Double(duration_s);
  w.EndObject();
  w.Key("accounting");
  w.BeginObject();
  w.Key("calls");
  w.Int(accounting.calls);
  w.Key("seconds");
  w.Double(accounting.seconds);
  w.Key("ns_per_call");
  w.Double(accounting.ns_per_call);
  w.Key("sim_seconds");
  w.Double(accounting.sim_seconds);
  w.Key("load_transactions");
  w.Int(static_cast<int64_t>(accounting.load_transactions));
  w.EndObject();
  w.Key("bitwise_sweep");
  WriteSweep(&w, bitwise);
  w.Key("joint_sweep");
  WriteSweep(&w, joint);
  if (run_serve) {
    w.Key("serve");
    w.BeginObject();
    w.Key("p50_ms");
    w.Double(serve.p50_ms);
    w.Key("p95_ms");
    w.Double(serve.p95_ms);
    w.Key("p99_ms");
    w.Double(serve.p99_ms);
    w.Key("achieved_qps");
    w.Double(serve.achieved_qps);
    w.Key("completed");
    w.Int(serve.completed);
    w.Key("checksum");
    WriteHex(&w, serve.checksum);
    w.EndObject();
  }
  if (have_baseline) {
    const double bitwise_before = baseline_best("bitwise_sweep");
    const double joint_before = baseline_best("joint_sweep");
    w.Key("speedup_vs_baseline");
    w.BeginObject();
    w.Key("bitwise_sweep");
    w.Double(bitwise.best_seconds > 0.0 && bitwise_before > 0.0
                 ? bitwise_before / bitwise.best_seconds
                 : 0.0);
    w.Key("joint_sweep");
    w.Double(joint.best_seconds > 0.0 && joint_before > 0.0
                 ? joint_before / joint.best_seconds
                 : 0.0);
    w.EndObject();
    w.Key("baseline");
    std::ifstream is(baseline_path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    while (!text.empty() &&
           (text.back() == '\n' || text.back() == ' ' ||
            text.back() == '\r')) {
      text.pop_back();
    }
    w.Raw(text);
  }
  w.EndObject();
  os << '\n';
  std::printf("wrote %s\n", out.c_str());
  if (have_baseline) {
    std::printf("speedup vs baseline: bitwise %.2fx, joint %.2fx\n",
                baseline_best("bitwise_sweep") / bitwise.best_seconds,
                baseline_best("joint_sweep") / joint.best_seconds);
  }
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
