// Microbenchmarks for the graph generators (edges per second).
#include <benchmark/benchmark.h>

#include "gen/rmat.h"
#include "gen/uniform.h"

namespace ibfs::gen {
namespace {

void BM_Rmat(benchmark::State& state) {
  RmatParams params;
  params.scale = static_cast<int>(state.range(0));
  params.edge_factor = 8;
  for (auto _ : state) {
    auto g = GenerateRmat(params);
    benchmark::DoNotOptimize(g.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          (int64_t{1} << params.scale) * params.edge_factor);
}
BENCHMARK(BM_Rmat)->Arg(10)->Arg(12)->Arg(14);

void BM_Uniform(benchmark::State& state) {
  UniformParams params;
  params.vertex_count = state.range(0);
  params.outdegree = 8;
  for (auto _ : state) {
    auto g = GenerateUniform(params);
    benchmark::DoNotOptimize(g.ok());
  }
  state.SetItemsProcessed(state.iterations() * params.vertex_count *
                          params.outdegree);
}
BENCHMARK(BM_Uniform)->Arg(1 << 10)->Arg(1 << 13);

}  // namespace
}  // namespace ibfs::gen

BENCHMARK_MAIN();
