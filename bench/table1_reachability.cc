// Table 1: time to construct a 3-hop reachability index (the first k = 3
// levels of BFS from a large set of vertices) on FB, KG0, OR and TW, for
// MS-BFS, CPU-iBFS, B40C and GPU-iBFS. The paper's GPU-iBFS is 21x faster
// than B40C, 3.3x than MS-BFS and 2.2x than CPU-iBFS.
#include <iostream>

#include "apps/reachability_index.h"
#include "baselines/cpu_bfs.h"
#include "bench/common.h"
#include "ibfs/groupby.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

constexpr int kHops = 3;

double CpuBuildSeconds(const graph::Csr& graph,
                       std::span<const graph::VertexId> sources,
                       bool ibfs_variant) {
  Grouping grouping;
  if (ibfs_variant) {
    GroupByParams params;
    grouping = GroupByOutdegree(graph, sources, params);
  } else {
    grouping = ChunkGrouping(sources, 128);
  }
  baselines::CpuCostModel cpu;
  TraversalOptions options;
  options.max_level = kHops;
  for (const auto& group : grouping.groups) {
    auto result = ibfs_variant
                      ? baselines::RunCpuIbfs(graph, group, options, &cpu)
                      : baselines::RunMsBfs(graph, group, options, &cpu);
    IBFS_CHECK(result.ok());
  }
  return cpu.Seconds();
}

double GpuBuildSeconds(const graph::Csr& graph,
                       std::span<const graph::VertexId> sources,
                       Strategy strategy, GroupingPolicy policy) {
  EngineOptions options = BaseOptions(strategy, policy);
  options.keep_depths = true;
  auto index =
      apps::KHopReachabilityIndex::Build(graph, sources, kHops, options);
  IBFS_CHECK(index.ok()) << index.status().ToString();
  return index.value().build_seconds();
}

int Main() {
  PrintHeader("Table 1",
              "3-hop reachability index construction time (milliseconds, "
              "simulated)");
  const int64_t instances = InstanceCount(1024);

  CsvTable table({"graph", "MS-BFS_ms", "CPU-iBFS_ms", "B40C_ms",
                  "GPU-iBFS_ms", "gpu_vs_b40c_x"});
  for (const LoadedGraph& lg : LoadNamed({"FB", "KG0", "OR", "TW"})) {
    const auto sources = Sources(lg.graph, instances);
    const double ms_bfs = CpuBuildSeconds(lg.graph, sources, false);
    const double cpu_ibfs = CpuBuildSeconds(lg.graph, sources, true);
    const double b40c = GpuBuildSeconds(lg.graph, sources,
                                        Strategy::kSequential,
                                        GroupingPolicy::kInOrder);
    const double gpu_ibfs = GpuBuildSeconds(lg.graph, sources,
                                            Strategy::kBitwise,
                                            GroupingPolicy::kGroupBy);
    table.Row()
        .Add(lg.name)
        .Add(ms_bfs * 1e3, 3)
        .Add(cpu_ibfs * 1e3, 3)
        .Add(b40c * 1e3, 3)
        .Add(gpu_ibfs * 1e3, 3)
        .Add(b40c / gpu_ibfs, 1);
  }
  table.Print(std::cout);
  std::printf(
      "(paper, in hours at full scale: GPU-iBFS 21x vs B40C, 3.3x vs "
      "MS-BFS, 2.2x vs CPU-iBFS)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
