// Microbenchmark: joint frontier queue generation over a full status-array
// scan (the fq_gen kernel's host-side analogue).
#include <benchmark/benchmark.h>

#include "gpusim/device.h"
#include "graph/components.h"
#include "ibfs/runner.h"
#include "gen/rmat.h"

namespace ibfs {
namespace {

void BM_JointGroupTraversal(benchmark::State& state) {
  gen::RmatParams params;
  params.scale = 11;
  params.edge_factor = 8;
  auto graph = gen::GenerateRmat(params);
  const auto sources =
      graph::SampleConnectedSources(graph.value(), state.range(0), 3);
  TraversalOptions options;
  options.record_depths = false;
  options.collect_instance_stats = false;
  for (auto _ : state) {
    gpusim::Device device;
    auto result = RunGroup(Strategy::kBitwise, graph.value(), sources,
                           options, &device);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * graph.value().edge_count() *
                          state.range(0));
}
BENCHMARK(BM_JointGroupTraversal)->Arg(32)->Arg(128);

}  // namespace
}  // namespace ibfs

BENCHMARK_MAIN();
