// Online-serving bench, two experiments in one BENCH_service.json:
//
// 1. Deadline sweep (cache off, for continuity with earlier runs): the
//    same open-loop workload at a sweep of batching deadlines
//    (--max-delay-ms in the CLI), recording the latency-vs-sharing
//    tradeoff dynamic batching buys — longer deadlines close bigger
//    batches (better GroupBy sharing, closer to the offline oracle) at
//    the cost of queue latency. -> "points": [{max_delay_ms, p50, ...}].
//
// 2. Hot-source cache comparison: a bursty workload over a small pool of
//    distinct sources (the traffic shape the result cache exists for),
//    driven twice over identical arrivals — cache on vs --no-cache — with
//    every per-query depth checksum compared between the two modes.
//    -> "hot_source": {uncached: {...}, cached: {...}, p50_speedup,
//    checksums_match}.
//
// Environment knobs: IBFS_GRAPH (default PK), IBFS_QPS (default 400),
// IBFS_DURATION (default 1 s), IBFS_SERVE_THREADS (default 2),
// IBFS_HOT_QPS (default 600), IBFS_HOT_SOURCES (default 8),
// IBFS_BENCH_OUT (default BENCH_service.json).
//
// Live-telemetry knobs (all off by default; any of them arms the shared
// metrics registry across the sweep): IBFS_ACCESS_LOG (per-query JSONL),
// IBFS_SLO ("<class>:<ms>:<target>" burn-rate tracker), IBFS_LIVE_OUT
// (rolling snapshot JSON), IBFS_PROM_OUT (Prometheus text).
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "obs/json.h"
#include "obs/live.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "service/service.h"
#include "service/workload.h"

namespace ibfs::bench {
namespace {

struct Point {
  double delay_ms = 0.0;
  obs::ServiceReport report;
};

int Main() {
  PrintHeader("serve bench",
              "dynamic-batching deadline sweep: latency vs sharing");
  const std::string graph_name = EnvString("IBFS_GRAPH", "PK");
  std::vector<LoadedGraph> loaded_set =
      LoadNamed(std::vector<std::string>{graph_name});
  const LoadedGraph& loaded = loaded_set.front();
  service::WorkloadOptions workload;
  workload.arrival = service::ArrivalProcess::kPoisson;
  workload.qps = EnvDouble("IBFS_QPS", 400.0);
  workload.duration_s = EnvDouble("IBFS_DURATION", 1.0);
  workload.seed = 2016;
  auto events = service::GenerateArrivals(loaded.graph, workload);
  IBFS_CHECK(events.ok()) << events.status().ToString();

  EngineOptions engine = BaseOptions(Strategy::kBitwise,
                                     GroupingPolicy::kGroupBy);
  auto oracle =
      service::OracleSharingRatio(loaded.graph, engine, events.value());
  IBFS_CHECK(oracle.ok()) << oracle.status().ToString();

  // Optional live-telemetry exercise: the same sinks `ibfs_cli serve`
  // wires, shared across every sweep point so the exporter sees a
  // continuous stream.
  obs::MetricsRegistry live_metrics;
  std::unique_ptr<obs::AccessLog> access_log;
  std::unique_ptr<obs::SloTracker> slo;
  std::unique_ptr<obs::LiveExporter> exporter;
  const std::string access_path = EnvString("IBFS_ACCESS_LOG", "");
  if (!access_path.empty()) {
    auto opened = obs::AccessLog::Open(access_path);
    IBFS_CHECK(opened.ok()) << opened.status().ToString();
    access_log = std::move(opened.value());
  }
  const std::string slo_spec = EnvString("IBFS_SLO", "");
  if (!slo_spec.empty()) {
    auto spec = obs::SloSpec::Parse(slo_spec);
    IBFS_CHECK(spec.ok()) << spec.status().ToString();
    slo = std::make_unique<obs::SloTracker>(spec.value());
  }
  const std::string live_out = EnvString("IBFS_LIVE_OUT", "");
  const std::string prom_out = EnvString("IBFS_PROM_OUT", "");
  const bool live_enabled = access_log != nullptr || slo != nullptr ||
                            !live_out.empty() || !prom_out.empty();
  if (!live_out.empty() || !prom_out.empty()) {
    obs::LiveExporterOptions live_options;
    live_options.live_out = live_out;
    live_options.prom_out = prom_out;
    exporter = std::make_unique<obs::LiveExporter>(live_options,
                                                   &live_metrics, nullptr);
    exporter->Start();
  }

  const std::vector<double> delays = {0.5, 1.0, 2.0, 4.0, 8.0};
  std::vector<Point> points;
  std::printf("%8s %10s %8s %8s %8s %10s %9s\n", "delay", "mean batch",
              "p50 ms", "p95 ms", "p99 ms", "sharing", "vs oracle");
  for (double delay_ms : delays) {
    service::ServiceOptions options;
    options.max_batch = 64;
    options.max_delay_ms = delay_ms;
    options.execute_threads = EnvInt("IBFS_SERVE_THREADS", 2);
    options.keep_depths = false;
    // The sweep measures the batching deadline alone; caching would let
    // repeated sources skip batching and blur the comparison.
    options.cache.enabled = false;
    options.engine = engine;
    if (live_enabled) {
      options.observer.metrics = &live_metrics;
      options.access_log = access_log.get();
      options.slo = slo.get();
    }
    auto svc = service::BfsService::Create(&loaded.graph, options);
    IBFS_CHECK(svc.ok()) << svc.status().ToString();
    auto drive = service::DriveWorkload(svc.value().get(), events.value());
    IBFS_CHECK(drive.ok()) << drive.status().ToString();
    if (live_enabled) svc.value()->PublishLiveTelemetry();
    Point point;
    point.delay_ms = delay_ms;
    point.report =
        service::BuildServiceReport(graph_name, loaded.graph, options,
                                    workload, drive.value(), oracle.value());
    std::printf("%6.1fms %10.1f %8.2f %8.2f %8.2f %9.1f%% %8.1f%%\n",
                delay_ms, point.report.mean_batch_size,
                point.report.total_ms.p50, point.report.total_ms.p95,
                point.report.total_ms.p99,
                100.0 * point.report.sharing_ratio,
                100.0 * point.report.sharing_fraction);
    points.push_back(std::move(point));
  }

  // Hot-source cache comparison: identical arrivals over a handful of
  // distinct sources, driven uncached then cached. Depth checksums must
  // be bit-identical between the two modes (the cache may only change
  // latency, never answers).
  service::WorkloadOptions hot;
  hot.arrival = service::ArrivalProcess::kBursty;
  hot.qps = EnvDouble("IBFS_HOT_QPS", 600.0);
  hot.duration_s = EnvDouble("IBFS_DURATION", 1.0);
  hot.seed = 77;
  hot.burst_size = 16;
  hot.source_pool = EnvInt64("IBFS_HOT_SOURCES", 8);
  auto hot_events = service::GenerateArrivals(loaded.graph, hot);
  IBFS_CHECK(hot_events.ok()) << hot_events.status().ToString();
  IBFS_CHECK(hot_events.value().size() >= 200)
      << "hot-source workload too small: " << hot_events.value().size();
  auto hot_oracle =
      service::OracleSharingRatio(loaded.graph, engine, hot_events.value());
  IBFS_CHECK(hot_oracle.ok()) << hot_oracle.status().ToString();

  auto drive_hot = [&](bool cache_on) {
    service::ServiceOptions options;
    options.max_batch = 64;
    options.max_delay_ms = 2.0;
    options.execute_threads = EnvInt("IBFS_SERVE_THREADS", 2);
    options.keep_depths = false;
    options.cache.enabled = cache_on;
    options.engine = engine;
    auto svc = service::BfsService::Create(&loaded.graph, options);
    IBFS_CHECK(svc.ok()) << svc.status().ToString();
    auto drive = service::DriveWorkload(svc.value().get(),
                                        hot_events.value());
    IBFS_CHECK(drive.ok()) << drive.status().ToString();
    return std::make_pair(
        service::BuildServiceReport(graph_name, loaded.graph, options, hot,
                                    drive.value(), hot_oracle.value()),
        std::move(drive.value().results));
  };
  auto [uncached_report, uncached_results] = drive_hot(false);
  auto [cached_report, cached_results] = drive_hot(true);
  IBFS_CHECK(uncached_results.size() == cached_results.size());
  bool checksums_match = true;
  for (size_t i = 0; i < uncached_results.size(); ++i) {
    IBFS_CHECK(uncached_results[i].status.ok())
        << uncached_results[i].status.ToString();
    IBFS_CHECK(cached_results[i].status.ok())
        << cached_results[i].status.ToString();
    if (uncached_results[i].depth_checksum !=
        cached_results[i].depth_checksum) {
      checksums_match = false;
    }
  }
  IBFS_CHECK(checksums_match)
      << "cached and uncached runs disagreed on depth checksums";
  const double p50_speedup =
      cached_report.total_ms.p50 > 0.0
          ? uncached_report.total_ms.p50 / cached_report.total_ms.p50
          : 0.0;
  std::printf(
      "\nhot-source (%lld sources, %lld queries, bursty %0.f qps):\n",
      static_cast<long long>(hot.source_pool),
      static_cast<long long>(hot_events.value().size()), hot.qps);
  std::printf("  uncached: p50 %8.3f ms  p95 %8.3f ms\n",
              uncached_report.total_ms.p50, uncached_report.total_ms.p95);
  std::printf("  cached:   p50 %8.3f ms  p95 %8.3f ms  "
              "(%.0fx p50; %lld hits, %.1f%% hit ratio)\n",
              cached_report.total_ms.p50, cached_report.total_ms.p95,
              p50_speedup, static_cast<long long>(cached_report.cache_hits),
              100.0 * cached_report.cache_hit_ratio);

  if (exporter != nullptr) {
    exporter->Stop();
    if (!live_out.empty()) std::printf("wrote %s\n", live_out.c_str());
    if (!prom_out.empty()) std::printf("wrote %s\n", prom_out.c_str());
  }
  if (access_log != nullptr) {
    std::printf("access log:      %lld queries -> %s\n",
                static_cast<long long>(access_log->lines()),
                access_path.c_str());
  }
  if (slo != nullptr) {
    std::printf("slo %s: %lld good, %lld bad, %lld alerts fired\n",
                slo->spec().ToString().c_str(),
                static_cast<long long>(slo->good()),
                static_cast<long long>(slo->bad()),
                static_cast<long long>(slo->alerts_fired()));
  }

  const std::string out = EnvString("IBFS_BENCH_OUT", "BENCH_service.json");
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("bench");
  w.String("serve");
  w.Key("graph");
  w.String(graph_name);
  w.Key("arrival");
  w.String("poisson");
  w.Key("qps");
  w.Double(workload.qps);
  w.Key("duration_seconds");
  w.Double(workload.duration_s);
  w.Key("max_batch");
  w.Int(64);
  w.Key("oracle_sharing_ratio");
  w.Double(oracle.value());
  w.Key("points");
  w.BeginArray();
  for (const Point& point : points) {
    const obs::ServiceReport& r = point.report;
    w.BeginObject();
    w.Key("max_delay_ms");
    w.Double(point.delay_ms);
    w.Key("queries");
    w.Int(r.queries);
    w.Key("completed");
    w.Int(r.completed);
    w.Key("batches");
    w.Int(r.batches);
    w.Key("mean_batch_size");
    w.Double(r.mean_batch_size);
    w.Key("achieved_qps");
    w.Double(r.achieved_qps);
    w.Key("p50_ms");
    w.Double(r.total_ms.p50);
    w.Key("p95_ms");
    w.Double(r.total_ms.p95);
    w.Key("p99_ms");
    w.Double(r.total_ms.p99);
    w.Key("queue_p95_ms");
    w.Double(r.queue_ms.p95);
    w.Key("teps");
    w.Double(r.teps);
    w.Key("sharing_ratio");
    w.Double(r.sharing_ratio);
    w.Key("sharing_fraction");
    w.Double(r.sharing_fraction);
    w.EndObject();
  }
  w.EndArray();

  auto write_hot_point = [&w](const obs::ServiceReport& r) {
    w.BeginObject();
    w.Key("cache_enabled");
    w.Bool(r.cache_enabled);
    w.Key("queries");
    w.Int(r.queries);
    w.Key("completed");
    w.Int(r.completed);
    w.Key("batches");
    w.Int(r.batches);
    w.Key("p50_ms");
    w.Double(r.total_ms.p50);
    w.Key("p95_ms");
    w.Double(r.total_ms.p95);
    w.Key("p99_ms");
    w.Double(r.total_ms.p99);
    w.Key("mean_ms");
    w.Double(r.total_ms.mean);
    w.Key("cache_hits");
    w.Int(r.cache_hits);
    w.Key("cache_misses");
    w.Int(r.cache_misses);
    w.Key("cache_hit_ratio");
    w.Double(r.cache_hit_ratio);
    w.Key("cache_bytes_resident");
    w.Int(r.cache_bytes_resident);
    w.Key("plan_hits");
    w.Int(r.plan_hits);
    w.EndObject();
  };
  w.Key("hot_source");
  w.BeginObject();
  w.Key("arrival");
  w.String("bursty");
  w.Key("qps");
  w.Double(hot.qps);
  w.Key("duration_seconds");
  w.Double(hot.duration_s);
  w.Key("source_pool");
  w.Int(hot.source_pool);
  w.Key("queries");
  w.Int(static_cast<int64_t>(hot_events.value().size()));
  w.Key("uncached");
  write_hot_point(uncached_report);
  w.Key("cached");
  write_hot_point(cached_report);
  w.Key("p50_speedup");
  w.Double(p50_speedup);
  w.Key("checksums_match");
  w.Bool(checksums_match);
  w.EndObject();
  w.EndObject();
  os << '\n';
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
