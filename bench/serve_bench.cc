// Online-serving bench: drives the same open-loop workload through the
// BFS query service at a sweep of batching deadlines (--max-delay-ms in
// the CLI) and records the latency-vs-sharing tradeoff that dynamic
// batching buys: longer deadlines close bigger batches (better GroupBy
// sharing, closer to the offline oracle) at the cost of queue latency.
// Writes BENCH_service.json: {"bench":"serve","points":[{delay_ms, p50,
// p95, p99, mean_batch_size, sharing_ratio, sharing_fraction, ...}]}.
// Environment knobs: IBFS_GRAPH (default PK), IBFS_QPS (default 400),
// IBFS_DURATION (default 1 s), IBFS_SERVE_THREADS (default 2),
// IBFS_BENCH_OUT (default BENCH_service.json).
#include <fstream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "obs/json.h"
#include "service/service.h"
#include "service/workload.h"

namespace ibfs::bench {
namespace {

struct Point {
  double delay_ms = 0.0;
  obs::ServiceReport report;
};

int Main() {
  PrintHeader("serve bench",
              "dynamic-batching deadline sweep: latency vs sharing");
  const std::string graph_name = EnvString("IBFS_GRAPH", "PK");
  std::vector<LoadedGraph> loaded_set =
      LoadNamed(std::vector<std::string>{graph_name});
  const LoadedGraph& loaded = loaded_set.front();
  service::WorkloadOptions workload;
  workload.arrival = service::ArrivalProcess::kPoisson;
  workload.qps = static_cast<double>(EnvInt64("IBFS_QPS", 400));
  workload.duration_s = EnvDouble("IBFS_DURATION", 1.0);
  workload.seed = 2016;
  auto events = service::GenerateArrivals(loaded.graph, workload);
  IBFS_CHECK(events.ok()) << events.status().ToString();

  EngineOptions engine = BaseOptions(Strategy::kBitwise,
                                     GroupingPolicy::kGroupBy);
  auto oracle =
      service::OracleSharingRatio(loaded.graph, engine, events.value());
  IBFS_CHECK(oracle.ok()) << oracle.status().ToString();

  const std::vector<double> delays = {0.5, 1.0, 2.0, 4.0, 8.0};
  std::vector<Point> points;
  std::printf("%8s %10s %8s %8s %8s %10s %9s\n", "delay", "mean batch",
              "p50 ms", "p95 ms", "p99 ms", "sharing", "vs oracle");
  for (double delay_ms : delays) {
    service::ServiceOptions options;
    options.max_batch = 64;
    options.max_delay_ms = delay_ms;
    options.execute_threads =
        static_cast<int>(EnvInt64("IBFS_SERVE_THREADS", 2));
    options.keep_depths = false;
    options.engine = engine;
    auto svc = service::BfsService::Create(&loaded.graph, options);
    IBFS_CHECK(svc.ok()) << svc.status().ToString();
    auto drive = service::DriveWorkload(svc.value().get(), events.value());
    IBFS_CHECK(drive.ok()) << drive.status().ToString();
    Point point;
    point.delay_ms = delay_ms;
    point.report =
        service::BuildServiceReport(graph_name, loaded.graph, options,
                                    workload, drive.value(), oracle.value());
    std::printf("%6.1fms %10.1f %8.2f %8.2f %8.2f %9.1f%% %8.1f%%\n",
                delay_ms, point.report.mean_batch_size,
                point.report.total_ms.p50, point.report.total_ms.p95,
                point.report.total_ms.p99,
                100.0 * point.report.sharing_ratio,
                100.0 * point.report.sharing_fraction);
    points.push_back(std::move(point));
  }

  const std::string out = EnvString("IBFS_BENCH_OUT", "BENCH_service.json");
  std::ofstream os(out, std::ios::binary);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", out.c_str());
    return 1;
  }
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("bench");
  w.String("serve");
  w.Key("graph");
  w.String(graph_name);
  w.Key("arrival");
  w.String("poisson");
  w.Key("qps");
  w.Double(workload.qps);
  w.Key("duration_seconds");
  w.Double(workload.duration_s);
  w.Key("max_batch");
  w.Int(64);
  w.Key("oracle_sharing_ratio");
  w.Double(oracle.value());
  w.Key("points");
  w.BeginArray();
  for (const Point& point : points) {
    const obs::ServiceReport& r = point.report;
    w.BeginObject();
    w.Key("max_delay_ms");
    w.Double(point.delay_ms);
    w.Key("queries");
    w.Int(r.queries);
    w.Key("completed");
    w.Int(r.completed);
    w.Key("batches");
    w.Int(r.batches);
    w.Key("mean_batch_size");
    w.Double(r.mean_batch_size);
    w.Key("achieved_qps");
    w.Double(r.achieved_qps);
    w.Key("p50_ms");
    w.Double(r.total_ms.p50);
    w.Key("p95_ms");
    w.Double(r.total_ms.p95);
    w.Key("p99_ms");
    w.Double(r.total_ms.p99);
    w.Key("queue_p95_ms");
    w.Double(r.queue_ms.p95);
    w.Key("teps");
    w.Double(r.teps);
    w.Key("sharing_ratio");
    w.Double(r.sharing_ratio);
    w.Key("sharing_fraction");
    w.Double(r.sharing_fraction);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
