// Figure 9: frontier sharing ratio, random grouping vs GroupBy, split into
// (a) top-down and (b) bottom-up levels, on all 13 graphs. The paper's
// GroupBy lifts top-down sharing ~10x (3.9% -> 39.3%) and bottom-up to
// 66.1% average for N = 128.
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Figure 9",
              "sharing ratio %: random vs GroupBy, top-down & bottom-up");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "td_random", "td_groupby", "bu_random",
                  "bu_groupby"});
  double sums[4] = {0, 0, 0, 0};
  int count = 0;
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    auto ratios = [&](GroupingPolicy policy, double* td, double* bu) {
      EngineOptions options =
          BaseOptions(Strategy::kJointTraversal, policy);
      const EngineResult result = MustRun(lg.graph, options, sources);
      *td = 100.0 * result.SharingRatio(0);
      *bu = 100.0 * result.SharingRatio(1);
    };
    double td_rand = 0, bu_rand = 0, td_grp = 0, bu_grp = 0;
    ratios(GroupingPolicy::kRandom, &td_rand, &bu_rand);
    ratios(GroupingPolicy::kGroupBy, &td_grp, &bu_grp);
    table.Row()
        .Add(lg.name)
        .Add(td_rand, 1)
        .Add(td_grp, 1)
        .Add(bu_rand, 1)
        .Add(bu_grp, 1);
    sums[0] += td_rand;
    sums[1] += td_grp;
    sums[2] += bu_rand;
    sums[3] += bu_grp;
    ++count;
  }
  table.Print(std::cout);
  std::printf(
      "averages: td random=%.1f%% groupby=%.1f%%, bu random=%.1f%% "
      "groupby=%.1f%% (paper: 3.9 -> 39.3, 38.7 -> 66.1)\n",
      sums[0] / count, sums[1] / count, sums[2] / count, sums[3] / count);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
