// Weak-scaling sweep: bitwise+GroupBy TEPS as the graph grows (IBFS_SCALE
// deltas), showing the simulated device approaching its throughput plateau
// the way real GPUs do as kernels get big enough to saturate.
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Scaling sweep", "TEPS vs graph scale (bitwise + GroupBy)");
  const int64_t instances = InstanceCount(256);

  CsvTable table({"graph", "scale_delta", "vertices", "edges", "GTEPS"});
  for (const auto name : {"KG2", "RD"}) {
    auto id = gen::BenchmarkByName(name);
    IBFS_CHECK(id.has_value());
    for (int delta : {-3, -2, -1, 0, 1}) {
      auto built = gen::GenerateBenchmark(*id, delta);
      IBFS_CHECK(built.ok());
      const graph::Csr& g = built.value();
      const auto sources = Sources(g, instances);
      EngineOptions options =
          BaseOptions(Strategy::kBitwise, GroupingPolicy::kGroupBy);
      const EngineResult result = MustRun(g, options, sources);
      table.Row()
          .Add(std::string(name))
          .Add(delta)
          .Add(g.vertex_count())
          .Add(g.edge_count())
          .Add(ToBillions(result.teps), 2);
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
