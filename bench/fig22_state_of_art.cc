// Figure 22: comparison against the state of the art on FB, HW, KG0, LJ,
// OR and TW — MS-BFS and CPU-iBFS on the modeled CPU, B40C (single-BFS
// GPU), SpMM-BC (top-down-only concurrent GPU), and GPU iBFS. The paper:
// CPU-iBFS beats MS-BFS by ~45%+, GPU iBFS is ~2x SpMM-BC, ~19x B40C, and
// ~2x the CPU implementation.
#include <iostream>

#include "baselines/cpu_bfs.h"
#include "baselines/gpu_baselines.h"
#include "bench/common.h"
#include "ibfs/groupby.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

// Runs a CPU-modeled concurrent BFS group by group (GroupBy batches for
// CPU-iBFS, plain chunks for MS-BFS which has no grouping notion).
template <typename Fn>
double CpuTeps(const graph::Csr& graph,
               std::span<const graph::VertexId> sources, int group_size,
               bool use_groupby, Fn run) {
  Grouping grouping;
  if (use_groupby) {
    GroupByParams params;
    params.group_size = group_size;
    grouping = GroupByOutdegree(graph, sources, params);
  } else {
    grouping = ChunkGrouping(sources, group_size);
  }
  baselines::CpuCostModel cpu;
  TraversalOptions options;
  options.record_depths = true;
  for (const auto& group : grouping.groups) {
    auto result = run(graph, group, options, &cpu);
    IBFS_CHECK(result.ok()) << result.status().ToString();
  }
  const double edges = static_cast<double>(graph.edge_count()) *
                       static_cast<double>(sources.size());
  return edges / cpu.Seconds();
}

double GpuTeps(const graph::Csr& graph,
               std::span<const graph::VertexId> sources, Strategy strategy,
               GroupingPolicy policy, bool force_top_down) {
  EngineOptions options = BaseOptions(strategy, policy);
  options.traversal.force_top_down = force_top_down;
  return MustRun(graph, options, sources).teps;
}

int Main() {
  PrintHeader("Figure 22",
              "MS-BFS / CPU-iBFS / B40C / SpMM-BC / GPU-iBFS (GTEPS)");
  const int64_t instances = InstanceCount(512);
  const int group_size = 128;

  CsvTable table({"graph", "MS-BFS", "CPU-iBFS", "B40C", "SpMM-BC",
                  "GPU-iBFS"});
  for (const LoadedGraph& lg :
       LoadNamed({"FB", "HW", "KG0", "LJ", "OR", "TW"})) {
    const auto sources = Sources(lg.graph, instances);
    const double ms_bfs =
        CpuTeps(lg.graph, sources, group_size, /*use_groupby=*/false,
                [](const auto& g, const auto& s, const auto& o, auto* cpu) {
                  return baselines::RunMsBfs(g, s, o, cpu);
                });
    const double cpu_ibfs =
        CpuTeps(lg.graph, sources, group_size, /*use_groupby=*/true,
                [](const auto& g, const auto& s, const auto& o, auto* cpu) {
                  return baselines::RunCpuIbfs(g, s, o, cpu);
                });
    const double b40c = GpuTeps(lg.graph, sources, Strategy::kSequential,
                                GroupingPolicy::kRandom, false);
    const double spmm = GpuTeps(lg.graph, sources, Strategy::kJointTraversal,
                                GroupingPolicy::kRandom,
                                /*force_top_down=*/true);
    const double gpu_ibfs = GpuTeps(lg.graph, sources, Strategy::kBitwise,
                                    GroupingPolicy::kGroupBy, false);
    table.Row()
        .Add(lg.name)
        .Add(ToBillions(ms_bfs), 2)
        .Add(ToBillions(cpu_ibfs), 2)
        .Add(ToBillions(b40c), 2)
        .Add(ToBillions(spmm), 2)
        .Add(ToBillions(gpu_ibfs), 2);
  }
  table.Print(std::cout);
  std::printf(
      "(paper: GPU-iBFS ~2x CPU-iBFS, ~2x SpMM-BC, ~19x B40C; CPU-iBFS > "
      "MS-BFS)\n");
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
