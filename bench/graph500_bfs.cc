// Graph500-style BFS harness on the simulated device: 64 search keys,
// min/median/max harmonic-mean TEPS per key group, with validation —
// the community-standard methodology the paper's TEPS metric comes from.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.h"
#include "core/validate.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Graph500-style", "64 search keys, per-key TEPS statistics");
  const int64_t keys = InstanceCount(64);

  CsvTable table({"graph", "min_GTEPS", "median_GTEPS", "max_GTEPS",
                  "validated"});
  for (const LoadedGraph& lg : LoadNamed({"KG0", "KG1", "KG2", "RM"})) {
    const auto sources = Sources(lg.graph, keys);
    // One key per "iteration": run each as its own single-instance batch,
    // as the Graph500 reference does, with the full iBFS stack.
    std::vector<double> teps;
    bool all_valid = true;
    for (graph::VertexId key : sources) {
      EngineOptions options =
          BaseOptions(Strategy::kBitwise, GroupingPolicy::kInOrder);
      options.keep_depths = true;
      const graph::VertexId batch[1] = {key};
      const EngineResult result = MustRun(lg.graph, options, {batch, 1});
      teps.push_back(result.teps);
      all_valid &= ValidateBfsDepths(lg.graph, key,
                                     result.groups[0].depths[0])
                       .ok();
    }
    std::sort(teps.begin(), teps.end());
    table.Row()
        .Add(lg.name)
        .Add(ToBillions(teps.front()), 3)
        .Add(ToBillions(teps[teps.size() / 2]), 3)
        .Add(ToBillions(teps.back()), 3)
        .Add(std::string(all_valid ? "yes" : "NO"));
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
