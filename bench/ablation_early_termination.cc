// Ablation: bottom-up early termination on/off (bitwise strategy). The
// cumulative status array lets a frontier's thread stop scanning the
// moment every instance has found a parent — the capability MS-BFS's
// per-level reset removes. Results are identical either way; only the
// work differs.
#include <iostream>

#include "bench/common.h"
#include "util/csv.h"

namespace ibfs::bench {
namespace {

int Main() {
  PrintHeader("Ablation", "bitwise bottom-up early termination on/off");
  const int64_t instances = InstanceCount(512);

  CsvTable table({"graph", "et_on_GTEPS", "et_off_GTEPS", "gain_x",
                  "bu_loads_saved_pct"});
  for (const LoadedGraph& lg : LoadAll()) {
    const auto sources = Sources(lg.graph, instances);
    auto run = [&](bool et) {
      EngineOptions options =
          BaseOptions(Strategy::kBitwise, GroupingPolicy::kGroupBy);
      options.traversal.early_termination = et;
      return MustRun(lg.graph, options, sources);
    };
    const EngineResult on = run(true);
    const EngineResult off = run(false);
    const auto bu_on = on.phases.count("bu_inspect")
                           ? on.phases.at("bu_inspect").mem.load_transactions
                           : 0;
    const auto bu_off =
        off.phases.count("bu_inspect")
            ? off.phases.at("bu_inspect").mem.load_transactions
            : 0;
    table.Row()
        .Add(lg.name)
        .Add(ToBillions(on.teps), 2)
        .Add(ToBillions(off.teps), 2)
        .Add(on.teps / off.teps, 2)
        .Add(bu_off > 0
                 ? 100.0 * (1.0 - static_cast<double>(bu_on) /
                                      static_cast<double>(bu_off))
                 : 0.0,
             1);
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ibfs::bench

int main() { return ibfs::bench::Main(); }
