// Microbenchmarks (google-benchmark) for the bitwise status array — the
// inner loop of Section 6's optimization.
#include <benchmark/benchmark.h>

#include "ibfs/bitwise_status_array.h"
#include "ibfs/status_array.h"
#include "util/prng.h"

namespace ibfs {
namespace {

void BM_BsaOrRow(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  BitwiseStatusArray dst(1024, instances);
  BitwiseStatusArray src(1024, instances);
  Prng prng(1);
  for (int i = 0; i < 2048; ++i) {
    src.SetBit(static_cast<graph::VertexId>(prng.NextBounded(1024)),
               static_cast<int>(prng.NextBounded(instances)));
  }
  graph::VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dst.OrRowFrom(v, src, (v + 7) % 1024));
    v = (v + 1) % 1024;
  }
  state.SetItemsProcessed(state.iterations() * instances);
}
BENCHMARK(BM_BsaOrRow)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_BsaRowAllSet(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  BitwiseStatusArray bsa(1024, instances);
  for (int64_t v = 0; v < 1024; v += 2) {
    for (int j = 0; j < instances; ++j) {
      bsa.SetBit(static_cast<graph::VertexId>(v), j);
    }
  }
  graph::VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bsa.RowAllSet(v));
    v = (v + 1) % 1024;
  }
}
BENCHMARK(BM_BsaRowAllSet)->Arg(64)->Arg(128);

// The JSA equivalent of one inspection row scan, for comparison: byte
// statuses of all instances of one vertex.
void BM_JsaRowScan(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  JointStatusArray jsa(1024, instances);
  for (int j = 0; j < instances; j += 3) jsa.SetDepth(5, j, 2);
  for (auto _ : state) {
    int frontier_hits = 0;
    const auto row = jsa.Row(5);
    for (int j = 0; j < instances; ++j) frontier_hits += row[j] == 2;
    benchmark::DoNotOptimize(frontier_hits);
  }
  state.SetItemsProcessed(state.iterations() * instances);
}
BENCHMARK(BM_JsaRowScan)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

}  // namespace
}  // namespace ibfs

BENCHMARK_MAIN();
