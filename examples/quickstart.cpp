// Quickstart: generate a power-law graph, run 128 concurrent BFS
// instances with full iBFS (bitwise + GroupBy) on the simulated GPU, and
// inspect results and performance counters through the public API.
#include <cstdio>
#include <numeric>

#include "core/engine.h"
#include "gen/rmat.h"
#include "graph/components.h"

int main() {
  using namespace ibfs;

  // 1. Build a graph. Any edge source works (GraphBuilder, LoadEdgeList,
  //    or a generator); here: a Graph500-style R-MAT instance.
  gen::RmatParams params;
  params.scale = 12;        // 4096 vertices
  params.edge_factor = 16;  // ~64k directed edges
  auto graph = gen::GenerateRmat(params);
  if (!graph.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %lld vertices, %lld directed edges\n",
              static_cast<long long>(graph.value().vertex_count()),
              static_cast<long long>(graph.value().edge_count()));

  // 2. Pick source vertices. Graph500-style: sample the giant component.
  const auto sources =
      graph::SampleConnectedSources(graph.value(), 128, /*seed=*/2016);

  // 3. Configure the engine. Defaults are the paper's full system:
  //    bitwise status arrays, GroupBy batching, N = 128 per group.
  EngineOptions options;
  options.strategy = Strategy::kBitwise;
  options.grouping = GroupingPolicy::kGroupBy;

  Engine engine(&graph.value(), options);
  auto result = engine.Run(sources);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const EngineResult& res = result.value();

  // 4. Read the results: per-instance BFS depths...
  int reached = 0;
  for (int64_t v = 0; v < graph.value().vertex_count(); ++v) {
    reached += res.DepthOf(0, 0, static_cast<graph::VertexId>(v)) >= 0;
  }
  std::printf("instance 0 (source %u) reached %d vertices\n",
              res.group_sources[0][0], reached);

  // 5. ...and the performance model's outputs.
  std::printf("simulated time: %.3f ms on %s\n", res.sim_seconds * 1e3,
              options.device.name.c_str());
  std::printf("traversal rate: %.1f billion TEPS\n", res.teps / 1e9);
  std::printf("sharing ratio:  %.1f%% of instances share an average joint "
              "frontier\n",
              100.0 * res.SharingRatio());
  std::printf("global memory:  %llu load / %llu store transactions\n",
              static_cast<unsigned long long>(
                  res.totals.mem.load_transactions),
              static_cast<unsigned long long>(
                  res.totals.mem.store_transactions));
  return 0;
}
