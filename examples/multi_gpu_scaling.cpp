// Multi-GPU example (paper Section 8.3): distribute concurrent-BFS groups
// across a simulated GPU cluster and study how placement policy and group
// shape drive scalability. No inter-GPU communication is needed — each
// device runs independent groups, so the reported time is the slowest
// device's.
#include <cstdio>

#include "core/engine.h"
#include "gen/benchmarks.h"
#include "gpusim/cluster.h"
#include "graph/components.h"

int main() {
  using namespace ibfs;

  // RD (uniform) scales best in the paper; TW (skewed) worst. Compare.
  for (const auto id : {gen::BenchmarkId::kRD, gen::BenchmarkId::kTW}) {
    auto graph = gen::GenerateBenchmark(id);
    if (!graph.ok()) return 1;
    const auto& spec = gen::GetBenchmark(id);

    const auto sources =
        graph::SampleConnectedSources(graph.value(), 2048, /*seed=*/3);
    EngineOptions options;
    options.strategy = Strategy::kBitwise;
    options.grouping = GroupingPolicy::kGroupBy;
    options.group_size = 32;  // many groups -> schedulable units
    options.device = gpusim::DeviceSpec::K20();
    options.keep_depths = false;

    Engine engine(&graph.value(), options);
    auto result = engine.Run(sources);
    if (!result.ok()) return 1;

    std::printf("%s: %zu groups, single-GPU time %.3f ms\n",
                spec.name.c_str(), result.value().group_seconds.size(),
                result.value().sim_seconds * 1e3);
    std::printf("  gpus  round-robin  LPT\n");
    for (int gpus : {2, 8, 32, 112}) {
      const double rr = gpusim::ClusterSpeedup(
          result.value().group_seconds, gpus,
          gpusim::PlacementPolicy::kRoundRobin);
      const double lpt = gpusim::ClusterSpeedup(
          result.value().group_seconds, gpus,
          gpusim::PlacementPolicy::kLpt);
      std::printf("  %4d  %9.1fx  %5.1fx\n", gpus, rr, lpt);
    }
  }
  std::printf(
      "(uniform graphs balance best; LPT placement recovers some of the "
      "imbalance loss)\n");
  return 0;
}
