// Application example: graph centrality via concurrent BFS — the class of
// algorithms (closeness [13], betweenness [11]) the paper's introduction
// motivates as iBFS consumers. Closeness runs through the iBFS engine;
// betweenness uses the exact Brandes accumulation for cross-checking.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "apps/centrality.h"
#include "gen/rmat.h"
#include "graph/components.h"
#include "graph/degree_stats.h"

int main() {
  using namespace ibfs;

  gen::RmatParams params;
  params.scale = 10;
  params.edge_factor = 12;
  auto graph = gen::GenerateRmat(params);
  if (!graph.ok()) return 1;
  const graph::Csr& g = graph.value();

  // Closeness centrality of every giant-component vertex, computed from
  // one concurrent-BFS sweep.
  const auto members = graph::GiantComponent(g);
  double sim_seconds = 0.0;
  EngineOptions options;
  options.strategy = Strategy::kBitwise;
  options.grouping = GroupingPolicy::kGroupBy;
  auto closeness = apps::ClosenessCentrality(g, members, options,
                                             &sim_seconds);
  if (!closeness.ok()) {
    std::fprintf(stderr, "%s\n", closeness.status().ToString().c_str());
    return 1;
  }

  std::printf("closeness for %zu vertices in %.3f simulated ms\n",
              members.size(), sim_seconds * 1e3);
  std::vector<size_t> order(members.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return closeness.value()[a] > closeness.value()[b];
  });
  std::printf("top-5 closeness (vertex: score, outdegree):\n");
  for (size_t i = 0; i < 5 && i < order.size(); ++i) {
    const graph::VertexId v = members[order[i]];
    std::printf("  %6u: %.4f  deg=%lld\n", v, closeness.value()[order[i]],
                static_cast<long long>(g.OutDegree(v)));
  }

  // Betweenness over a sample of pivots (Brandes), for the same graph.
  const auto pivots = graph::SampleConnectedSources(g, 64, 5);
  const auto bc = apps::BetweennessCentrality(g, pivots);
  const auto best = std::max_element(bc.begin(), bc.end());
  std::printf("max betweenness (64 pivots): vertex %lld, score %.1f\n",
              static_cast<long long>(best - bc.begin()), *best);

  // Sanity: high-degree hubs should rank high on both measures.
  const auto hubs = graph::HighOutDegreeVertices(g, 64);
  std::printf("%zu hubs with outdegree > 64 in the graph\n", hubs.size());
  return 0;
}
