// Application example (paper Section 8.7): build a 3-hop reachability
// index with concurrent BFS and answer "is t within k hops of s?" queries
// as bit lookups. Compares iBFS construction against the single-BFS
// baseline, the workload of Table 1.
#include <cstdio>

#include "apps/reachability_index.h"
#include "gen/benchmarks.h"
#include "graph/components.h"

int main() {
  using namespace ibfs;

  // The paper's PK graph preset (smallest real-world benchmark).
  auto graph = gen::GenerateBenchmark(gen::BenchmarkId::kPK);
  if (!graph.ok()) return 1;

  const int k = 3;
  const auto sources =
      graph::SampleConnectedSources(graph.value(), 512, /*seed=*/11);

  // Full iBFS construction.
  EngineOptions ibfs_options;
  ibfs_options.strategy = Strategy::kBitwise;
  ibfs_options.grouping = GroupingPolicy::kGroupBy;
  auto index = apps::KHopReachabilityIndex::Build(graph.value(), sources, k,
                                                  ibfs_options);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }

  // Single-BFS (B40C-like) construction for comparison.
  EngineOptions seq_options;
  seq_options.strategy = Strategy::kSequential;
  seq_options.grouping = GroupingPolicy::kInOrder;
  auto seq_index = apps::KHopReachabilityIndex::Build(graph.value(), sources,
                                                      k, seq_options);
  if (!seq_index.ok()) return 1;

  std::printf("%d-hop index over %lld sources, %lld vertices\n", k,
              static_cast<long long>(index.value().source_count()),
              static_cast<long long>(graph.value().vertex_count()));
  std::printf("index size: %.1f KiB packed bitmap\n",
              static_cast<double>(index.value().IndexBytes()) / 1024.0);
  std::printf("construction (simulated): iBFS %.3f ms vs single-BFS %.3f "
              "ms -> %.1fx\n",
              index.value().build_seconds() * 1e3,
              seq_index.value().build_seconds() * 1e3,
              seq_index.value().build_seconds() /
                  index.value().build_seconds());

  // Answer a few queries.
  int within = 0;
  const int64_t n = graph.value().vertex_count();
  for (int64_t v = 0; v < n; ++v) {
    within += index.value().Reachable(0, static_cast<graph::VertexId>(v));
  }
  std::printf("source #0 reaches %d of %lld vertices within %d hops\n",
              within, static_cast<long long>(n), k);
  const auto probe = static_cast<graph::VertexId>(n / 2);
  std::printf("hops from source #0 to vertex %u: %d\n", probe,
              index.value().HopsTo(0, probe));
  return 0;
}
