// Weighted traversal example: the paper notes iBFS "can be easily
// configured to ... traverse weighted graphs". Small integer weights turn
// the BFS frontier queue into Dial's circular bucket queue; this example
// runs concurrent weighted SSSP from many sources and cross-checks one
// instance against Dijkstra.
#include <cstdio>

#include "apps/weighted_sssp.h"
#include "gen/rmat.h"
#include "graph/components.h"

int main() {
  using namespace ibfs;

  gen::RmatParams params;
  params.scale = 11;
  params.edge_factor = 8;
  auto graph = gen::GenerateRmat(params);
  if (!graph.ok()) return 1;

  // Deterministic symmetric weights in [1, 8].
  const apps::EdgeWeights weights =
      apps::GenerateWeights(graph.value(), /*max_weight=*/8, /*seed=*/7);

  const auto sources =
      graph::SampleConnectedSources(graph.value(), 64, /*seed=*/3);
  baselines::CpuCostModel cpu;
  auto result = apps::ConcurrentWeightedSssp(graph.value(), weights,
                                             sources, &cpu);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("weighted SSSP from %zu sources on %lld vertices "
              "(weights 1..%d)\n",
              sources.size(),
              static_cast<long long>(graph.value().vertex_count()),
              weights.max_weight);
  std::printf("modeled time: %.3f ms\n", cpu.Seconds() * 1e3);

  // Inspect one instance and verify it against the Dijkstra oracle.
  const auto& dist = result.value()[0];
  const auto oracle =
      apps::DijkstraReference(graph.value(), weights, sources[0]);
  int64_t reachable = 0;
  int64_t max_dist = 0;
  bool all_match = true;
  for (size_t v = 0; v < dist.size(); ++v) {
    if (dist[v] >= 0) {
      ++reachable;
      max_dist = std::max(max_dist, dist[v]);
    }
    all_match &= dist[v] == oracle[v];
  }
  std::printf("instance 0 (source %u): %lld reachable, weighted "
              "eccentricity %lld, oracle match: %s\n",
              sources[0], static_cast<long long>(reachable),
              static_cast<long long>(max_dist), all_match ? "yes" : "NO");
  return all_match ? 0 : 1;
}
